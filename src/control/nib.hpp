// Network Information Base (§6): the controller's view of topology and
// routing. Crucially, this view can be *stale or wrong* (§4, [69, 71]) —
// scenarios exercise exactly that by letting the believed path diverge from
// what the data plane actually installed. The NIB never reads switch state
// directly; it only learns through UFM/FRM messages, like the paper's
// controller.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "net/flow.hpp"
#include "net/graph.hpp"
#include "net/paths.hpp"
#include "p4rt/packet.hpp"

namespace p4u::control {

struct FlowView {
  net::Flow flow;
  net::Path believed_path;      // what the controller thinks is installed
  p4rt::Version version = 0;    // highest version the controller issued
  bool update_in_progress = false;
};

class Nib {
 public:
  explicit Nib(const net::Graph& graph) : graph_(&graph) {}

  [[nodiscard]] const net::Graph& graph() const { return *graph_; }

  /// Registers a flow. `initial_version` 1 = already deployed in the data
  /// plane; 0 = rules not yet installed (the first update deploys them).
  void record_flow(const net::Flow& f, net::Path initial_path,
                   p4rt::Version initial_version = 1);
  [[nodiscard]] bool knows(net::FlowId id) const {
    return flows_.count(id) != 0;
  }
  [[nodiscard]] FlowView& view(net::FlowId id) { return flows_.at(id); }
  [[nodiscard]] const FlowView& view(net::FlowId id) const {
    return flows_.at(id);
  }

  /// Next version for a flow update; versions are globally unique per flow
  /// and strictly increasing (§3).
  p4rt::Version next_version(net::FlowId id) { return ++flows_.at(id).version; }

  /// Marks an update as deployed in the controller's belief. The belief may
  /// be wrong — that is the point of the verification experiments.
  void believe_path(net::FlowId id, net::Path p) {
    flows_.at(id).believed_path = std::move(p);
  }

  [[nodiscard]] const std::unordered_map<net::FlowId, FlowView>& flows() const {
    return flows_;
  }

  /// Every known flow id, sorted. Recovery scans ("which flows cross this
  /// dead link?") iterate this so their side effects — repair updates, give-
  /// ups — happen in a deterministic order regardless of insertion history.
  [[nodiscard]] std::vector<net::FlowId> sorted_flow_ids() const;

  /// Believed residual capacity of directed link (from -> to): capacity
  /// minus sizes of flows whose believed path uses that directed edge.
  [[nodiscard]] double believed_residual(net::NodeId from, net::NodeId to) const;

 private:
  const net::Graph* graph_;
  std::unordered_map<net::FlowId, FlowView> flows_;
};

}  // namespace p4u::control
