#include "control/admission.hpp"

#include <algorithm>
#include <utility>

namespace p4u::control {

namespace {

RequestState state_of(UpdateOutcome o) {
  switch (o) {
    case UpdateOutcome::kCompleted: return RequestState::kCompleted;
    case UpdateOutcome::kRolledBack: return RequestState::kRolledBack;
    case UpdateOutcome::kAbandoned: return RequestState::kAbandoned;
    case UpdateOutcome::kPending: break;
  }
  return RequestState::kQueued;  // non-terminal sentinel; callers guard
}

}  // namespace

AdmissionQueue::AdmissionQueue(FlowDb& db, AdmissionParams params)
    : db_(db), params_(params) {}

RequestId AdmissionQueue::submit(net::FlowId flow, RequestKind kind,
                                 net::Path new_path) {
  const RequestId id = db_.request_submitted(flow, kind, now());
  if (params_.coalesce) {
    // At most one queued entry per flow exists under coalescing, so the
    // first hit is the only one. The replacement keeps the queue position:
    // a flow cannot gain priority by resubmitting.
    for (Pending& p : pending_) {
      if (p.flow != flow) continue;
      finish(p.id, RequestState::kSuperseded);
      ++coalesced_;
      p.id = id;
      p.path = std::move(new_path);
      return id;
    }
  }
  pending_.push_back(Pending{id, flow, std::move(new_path)});
  queued_peak_ = std::max(queued_peak_, pending_.size());
  pump();
  return id;
}

RequestId AdmissionQueue::note_instant(net::FlowId flow, RequestKind kind) {
  const sim::Time t = now();
  const RequestId id = db_.request_submitted(flow, kind, t);
  db_.request_dispatched(id, 0, t);
  finish(id, RequestState::kCompleted);
  return id;
}

void AdmissionQueue::on_update_settled(net::FlowId flow,
                                       p4rt::Version version,
                                       UpdateOutcome outcome) {
  const RequestState terminal = state_of(outcome);
  if (!is_terminal(terminal)) return;
  const auto ait = active_.find(flow);
  if (ait == active_.end() || ait->second.empty()) return;
  std::vector<Active>& acts = ait->second;

  // The settled version's request, by exact match first. Without one (the
  // controller settled a version it issued internally — a recovery repair —
  // or one ez-Segway assigned after dispatch), older known versions are
  // superseded and the oldest version-less dispatch absorbs the outcome:
  // per-flow issue order is FIFO, so that entry is the settled one whenever
  // the version is attributable at all.
  std::size_t match = acts.size();
  for (std::size_t i = 0; i < acts.size(); ++i) {
    if (acts[i].version == version) {
      match = i;
      break;
    }
  }
  if (match == acts.size()) {
    // Drop the prefix of strictly-older known versions first, then look
    // for a version-less dispatch to attribute to.
    while (!acts.empty() && acts.front().version != 0 &&
           acts.front().version < version) {
      const RequestId id = acts.front().id;
      acts.erase(acts.begin());
      --inflight_;
      finish(id, RequestState::kSuperseded);
    }
    if (acts.empty() || acts.front().version != 0) {
      if (acts.empty()) active_.erase(ait);
      pump();
      return;
    }
    match = 0;
  }

  // Version-ordered notification: everything dispatched before the match is
  // an older version — it settles kSuperseded *before* the match's own
  // terminal notification fires.
  std::vector<RequestId> resolved;
  resolved.reserve(match + 1);
  for (std::size_t i = 0; i <= match; ++i) resolved.push_back(acts[i].id);
  acts.erase(acts.begin(), acts.begin() + static_cast<std::ptrdiff_t>(match) + 1);
  inflight_ -= match + 1;
  if (acts.empty()) active_.erase(ait);

  for (std::size_t i = 0; i + 1 < resolved.size(); ++i) {
    finish(resolved[i], RequestState::kSuperseded);
  }
  db_.request_version(resolved.back(), version);
  finish(resolved.back(), terminal);
  pump();
}

void AdmissionQueue::finish(RequestId id, RequestState terminal) {
  db_.request_finished(id, terminal, now());
  if (notify_) {
    const RequestRecord* rec = db_.request(id);
    if (rec != nullptr) notify_(*rec);
  }
}

std::size_t AdmissionQueue::flow_inflight(net::FlowId flow) const {
  const auto it = active_.find(flow);
  return it == active_.end() ? 0 : it->second.size();
}

bool AdmissionQueue::can_dispatch(net::FlowId flow) const {
  return params_.max_inflight_per_flow == 0 ||
         flow_inflight(flow) < params_.max_inflight_per_flow;
}

void AdmissionQueue::dispatch_one(Pending p) {
  db_.request_dispatched(p.id, 0, now());
  active_[p.flow].push_back(Active{p.id, 0});
  ++inflight_;
  inflight_peak_ = std::max(inflight_peak_, inflight_);
  ++dispatched_;
  const DispatchResult r =
      dispatch_ ? dispatch_(p.flow, p.path) : DispatchResult{};
  const RequestRecord* rec = db_.request(p.id);
  if (rec == nullptr || is_terminal(rec->state)) {
    // Settled from inside the dispatch (a trivial update completed inline);
    // the settle handler already removed the active entry.
    return;
  }
  if (!r.accepted) {
    // Nothing was issued (preflight refusal): the flow keeps its believed
    // old path, which is exactly a rollback from the request's view.
    ++refused_;
    auto ait = active_.find(p.flow);
    if (ait != active_.end()) {
      auto& acts = ait->second;
      for (std::size_t i = 0; i < acts.size(); ++i) {
        if (acts[i].id != p.id) continue;
        acts.erase(acts.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      if (acts.empty()) active_.erase(ait);
    }
    --inflight_;
    finish(p.id, RequestState::kRolledBack);
    return;
  }
  if (r.version != 0) {
    db_.request_version(p.id, r.version);
    auto ait = active_.find(p.flow);
    if (ait != active_.end()) {
      for (Active& a : ait->second) {
        if (a.id == p.id) {
          a.version = r.version;
          break;
        }
      }
    }
  }
}

void AdmissionQueue::pump() {
  if (pumping_) return;  // a settle inside a dispatch defers to this loop
  pumping_ = true;
  while (!pending_.empty()) {
    if (params_.max_inflight_global != 0 &&
        inflight_ >= params_.max_inflight_global) {
      break;
    }
    // FIFO with a skip scan: the oldest request whose flow has a free slot
    // dispatches; flows at their bound do not block unrelated flows.
    std::size_t pick = pending_.size();
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (can_dispatch(pending_[i].flow)) {
        pick = i;
        break;
      }
    }
    if (pick == pending_.size()) break;
    Pending p = std::move(pending_[pick]);
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(pick));
    dispatch_one(std::move(p));
  }
  pumping_ = false;
}

}  // namespace p4u::control
