#include "control/flow_db.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace p4u::control {

const std::vector<UpdateRecord> FlowDb::kEmpty;

const char* to_string(UpdateOutcome o) {
  switch (o) {
    case UpdateOutcome::kPending: return "pending";
    case UpdateOutcome::kCompleted: return "completed";
    case UpdateOutcome::kRolledBack: return "rolled-back";
    case UpdateOutcome::kAbandoned: return "abandoned";
  }
  return "?";
}

const char* to_string(RequestKind k) {
  switch (k) {
    case RequestKind::kAdd: return "add";
    case RequestKind::kReroute: return "reroute";
    case RequestKind::kRemove: return "remove";
  }
  return "?";
}

const char* to_string(RequestState s) {
  switch (s) {
    case RequestState::kQueued: return "queued";
    case RequestState::kDispatched: return "dispatched";
    case RequestState::kCompleted: return "completed";
    case RequestState::kRolledBack: return "rolled-back";
    case RequestState::kAbandoned: return "abandoned";
    case RequestState::kSuperseded: return "superseded";
  }
  return "?";
}

bool is_terminal(RequestState s) {
  return s == RequestState::kCompleted || s == RequestState::kRolledBack ||
         s == RequestState::kAbandoned || s == RequestState::kSuperseded;
}

void FlowDb::reserve(std::size_t expected) {
  index_.reserve(expected);
  histories_.reserve(expected);
}

void FlowDb::on_issued(net::FlowId flow, p4rt::Version v, sim::Time at) {
  const net::FlowHandle h = index_.intern(flow);
  if (h >= histories_.size()) histories_.resize(h + 1);
  auto& hist = histories_[h];
  for (auto& r : hist) {
    if (r.state == UpdateState::kInProgress) r.state = UpdateState::kSuperseded;
  }
  hist.push_back(UpdateRecord{v, at, 0, UpdateState::kInProgress, 0,
                              UpdateOutcome::kPending});
}

void FlowDb::on_completed(net::FlowId flow, p4rt::Version v, sim::Time at) {
  const net::FlowHandle h = index_.find(flow);
  if (h == net::kNoFlowHandle) return;
  for (auto& r : histories_[h]) {
    if (r.version == v && r.completed_at == 0) {
      r.completed_at = at;
      r.state = UpdateState::kCompleted;
      r.outcome = UpdateOutcome::kCompleted;
    }
  }
}

void FlowDb::on_gave_up(net::FlowId flow, p4rt::Version v,
                        UpdateOutcome outcome, sim::Time at) {
  const net::FlowHandle h = index_.find(flow);
  if (h == net::kNoFlowHandle) return;
  for (auto& r : histories_[h]) {
    if (r.version == v && r.outcome == UpdateOutcome::kPending) {
      r.outcome = outcome;
      r.completed_at = at;  // when the decision was made, for reporting
      if (r.state == UpdateState::kInProgress) r.state = UpdateState::kFailed;
    }
  }
}

void FlowDb::on_alarm(net::FlowId flow, p4rt::Version v) {
  const net::FlowHandle h = index_.find(flow);
  if (h == net::kNoFlowHandle) return;
  for (auto& r : histories_[h]) {
    if (r.version == v) {
      ++r.alarms;
      if (r.state == UpdateState::kInProgress) r.state = UpdateState::kFailed;
    }
  }
}

const std::vector<UpdateRecord>& FlowDb::history(net::FlowId f) const {
  const net::FlowHandle h = index_.find(f);
  return h == net::kNoFlowHandle ? kEmpty : histories_[h];
}

const UpdateRecord* FlowDb::record(net::FlowId f, p4rt::Version v) const {
  for (const auto& r : history(f)) {
    if (r.version == v) return &r;
  }
  return nullptr;
}

std::optional<sim::Duration> FlowDb::duration(net::FlowId f,
                                              p4rt::Version v) const {
  const UpdateRecord* r = record(f, v);
  if (r == nullptr || r->state != UpdateState::kCompleted) return std::nullopt;
  return r->completed_at - r->issued_at;
}

bool FlowDb::all_completed() const {
  for (const auto& hist : histories_) {
    for (const auto& r : hist) {
      if (r.state == UpdateState::kInProgress) return false;
    }
  }
  return true;
}

sim::Time FlowDb::last_completion() const {
  sim::Time t = 0;
  for (const auto& hist : histories_) {
    for (const auto& r : hist) t = std::max(t, r.completed_at);
  }
  return t;
}

bool FlowDb::all_terminal() const { return nonterminal_updates() == 0; }

std::uint64_t FlowDb::nonterminal_updates() const {
  std::uint64_t n = 0;
  for (const auto& hist : histories_) {
    if (!hist.empty() && hist.back().outcome == UpdateOutcome::kPending) ++n;
  }
  return n;
}

void FlowDb::export_outcomes(obs::MetricsRegistry& m) const {
  std::uint64_t by_outcome[4] = {0, 0, 0, 0};
  for (const auto& hist : histories_) {
    for (const auto& r : hist) {
      by_outcome[static_cast<std::size_t>(r.outcome)] += 1;
    }
  }
  // Top-up pattern: counters only move forward, so re-exporting after more
  // progress stays correct and re-exporting with no progress is a no-op.
  for (const UpdateOutcome o :
       {UpdateOutcome::kCompleted, UpdateOutcome::kRolledBack,
        UpdateOutcome::kAbandoned}) {
    obs::Counter c = m.counter("ctrl.outcome", {{"outcome", to_string(o)}});
    const std::uint64_t total = by_outcome[static_cast<std::size_t>(o)];
    if (total > c.value()) c.inc(total - c.value());
  }
  // Gauge, not counter: the number of unsettled updates shrinks as
  // recovery drives flows to terminal outcomes.
  m.gauge("ctrl.updates_nonterminal")
      .set(static_cast<double>(nonterminal_updates()));
}

RequestId FlowDb::request_submitted(net::FlowId flow, RequestKind kind,
                                    sim::Time at) {
  RequestRecord r;
  r.id = static_cast<RequestId>(requests_.size()) + 1;
  r.flow = flow;
  r.kind = kind;
  r.state = RequestState::kQueued;
  r.submitted_at = at;
  requests_.push_back(r);
  return r.id;
}

void FlowDb::request_dispatched(RequestId id, p4rt::Version v, sim::Time at) {
  if (id == 0 || id > requests_.size()) return;
  RequestRecord& r = requests_[id - 1];
  if (r.state != RequestState::kQueued) return;
  r.state = RequestState::kDispatched;
  r.version = v;
  r.dispatched_at = at;
}

void FlowDb::request_version(RequestId id, p4rt::Version v) {
  if (id == 0 || id > requests_.size()) return;
  RequestRecord& r = requests_[id - 1];
  if (r.version == 0) r.version = v;
}

void FlowDb::request_finished(RequestId id, RequestState terminal,
                              sim::Time at) {
  if (id == 0 || id > requests_.size() || !is_terminal(terminal)) return;
  RequestRecord& r = requests_[id - 1];
  if (is_terminal(r.state)) return;  // settled transitions are final
  r.state = terminal;
  r.finished_at = at;
}

const RequestRecord* FlowDb::request(RequestId id) const {
  if (id == 0 || id > requests_.size()) return nullptr;
  return &requests_[id - 1];
}

std::uint64_t FlowDb::requests_nonterminal() const {
  std::uint64_t n = 0;
  for (const RequestRecord& r : requests_) {
    if (!is_terminal(r.state)) ++n;
  }
  return n;
}

void FlowDb::export_requests(obs::MetricsRegistry& m) const {
  // kind x state totals; top-up like export_outcomes so re-exports after
  // further progress stay correct.
  std::uint64_t totals[3][6] = {};
  for (const RequestRecord& r : requests_) {
    totals[static_cast<std::size_t>(r.kind)]
          [static_cast<std::size_t>(r.state)] += 1;
  }
  for (const RequestKind k :
       {RequestKind::kAdd, RequestKind::kReroute, RequestKind::kRemove}) {
    for (const RequestState s :
         {RequestState::kCompleted, RequestState::kRolledBack,
          RequestState::kAbandoned, RequestState::kSuperseded}) {
      const std::uint64_t total = totals[static_cast<std::size_t>(k)]
                                        [static_cast<std::size_t>(s)];
      if (total == 0) continue;  // keep the registry sparse
      obs::Counter c = m.counter(
          "ctrl.request", {{"kind", to_string(k)}, {"state", to_string(s)}});
      if (total > c.value()) c.inc(total - c.value());
    }
  }
  m.gauge("ctrl.requests_nonterminal")
      .set(static_cast<double>(requests_nonterminal()));
}

std::uint64_t FlowDb::total_alarms() const {
  std::uint64_t n = 0;
  for (const auto& hist : histories_) {
    for (const auto& r : hist) n += r.alarms;
  }
  return n;
}

}  // namespace p4u::control
