#include "control/flow_db.hpp"

#include <algorithm>

namespace p4u::control {

const std::vector<UpdateRecord> FlowDb::kEmpty;

void FlowDb::on_issued(net::FlowId flow, p4rt::Version v, sim::Time at) {
  auto& hist = records_[flow];
  for (auto& r : hist) {
    if (r.state == UpdateState::kInProgress) r.state = UpdateState::kSuperseded;
  }
  hist.push_back(UpdateRecord{v, at, 0, UpdateState::kInProgress, 0});
}

void FlowDb::on_completed(net::FlowId flow, p4rt::Version v, sim::Time at) {
  auto it = records_.find(flow);
  if (it == records_.end()) return;
  for (auto& r : it->second) {
    if (r.version == v && r.completed_at == 0) {
      r.completed_at = at;
      r.state = UpdateState::kCompleted;
    }
  }
}

void FlowDb::on_alarm(net::FlowId flow, p4rt::Version v) {
  auto it = records_.find(flow);
  if (it == records_.end()) return;
  for (auto& r : it->second) {
    if (r.version == v) {
      ++r.alarms;
      if (r.state == UpdateState::kInProgress) r.state = UpdateState::kFailed;
    }
  }
}

const std::vector<UpdateRecord>& FlowDb::history(net::FlowId f) const {
  auto it = records_.find(f);
  return it == records_.end() ? kEmpty : it->second;
}

const UpdateRecord* FlowDb::record(net::FlowId f, p4rt::Version v) const {
  for (const auto& r : history(f)) {
    if (r.version == v) return &r;
  }
  return nullptr;
}

std::optional<sim::Duration> FlowDb::duration(net::FlowId f,
                                              p4rt::Version v) const {
  const UpdateRecord* r = record(f, v);
  if (r == nullptr || r->state != UpdateState::kCompleted) return std::nullopt;
  return r->completed_at - r->issued_at;
}

bool FlowDb::all_completed() const {
  // p4u-detlint: allow(unordered-iter) order-independent reduction (boolean AND)
  for (const auto& [flow, hist] : records_) {
    for (const auto& r : hist) {
      if (r.state == UpdateState::kInProgress) return false;
    }
  }
  return true;
}

sim::Time FlowDb::last_completion() const {
  sim::Time t = 0;
  // p4u-detlint: allow(unordered-iter) order-independent reduction (max)
  for (const auto& [flow, hist] : records_) {
    for (const auto& r : hist) t = std::max(t, r.completed_at);
  }
  return t;
}

std::uint64_t FlowDb::total_alarms() const {
  std::uint64_t n = 0;
  // p4u-detlint: allow(unordered-iter) order-independent reduction (integer sum)
  for (const auto& [flow, hist] : records_) {
    for (const auto& r : hist) n += r.alarms;
  }
  return n;
}

}  // namespace p4u::control
