// Destination-based routing (§11 "Destination-Based Routing").
//
// In destination-based forwarding, a destination's state is a rooted
// spanning (sub)tree: every participating node holds one rule toward its
// parent. P4Update adapts directly: distances become tree depths, and the
// update notification fans out from the root to all children instead of
// walking a single path — each node still verifies with Alg. 1 using only
// its own label and the parent's notification (this is exactly the rooted
// spanning-tree migration of Foerster et al. [19] that P4Update builds on).
#pragma once

#include <vector>

#include "net/flow.hpp"
#include "net/graph.hpp"
#include "p4rt/packet.hpp"

namespace p4u::control {

/// A rooted tree over (a subset of) the topology: parent[n] = next hop
/// toward the root, kNoNode for nodes outside the tree, n == root for the
/// root itself.
struct DestTree {
  net::NodeId root = net::kNoNode;
  std::vector<net::NodeId> parent;

  [[nodiscard]] bool contains(net::NodeId n) const {
    return parent.at(static_cast<std::size_t>(n)) != net::kNoNode ||
           n == root;
  }
};

/// Builds the shortest-path tree toward `root` spanning `members` (plus any
/// intermediate nodes the paths traverse).
DestTree spanning_tree_toward(const net::Graph& g, net::NodeId root,
                              const std::vector<net::NodeId>& members,
                              net::Metric metric = net::Metric::kHops);

/// Per-node label of a tree update (depth = D_n, ports toward parent and
/// children).
struct TreeNodeLabel {
  net::NodeId node = net::kNoNode;
  p4rt::Distance depth = 0;                // hops to the root
  std::int32_t parent_port = -1;           // new rule (kLocalPort at root)
  std::vector<std::int32_t> child_ports;   // UNM fan-out targets
  bool is_leaf = false;
};

/// Labels every tree node, root first (BFS order). Throws if the tree is
/// malformed (broken parent chain, cycle, or non-adjacent parent).
std::vector<TreeNodeLabel> label_tree(const net::Graph& g, const DestTree& t);

/// Validates structure: every non-root member's parent chain reaches the
/// root over existing links, without cycles.
bool valid_tree(const net::Graph& g, const DestTree& t);

}  // namespace p4u::control
