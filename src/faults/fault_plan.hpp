// Failure-domain model: what can go wrong in the network, declared up
// front.
//
// The paper's §5 verification model assumes dropped and reordered update
// packets; a production-scale reproduction must also survive link-down and
// switch-crash events *during* an in-flight update. A FaultPlan declares
// both: the probabilistic section (FaultModel — per-hop drop coins and
// reorder jitter) and an ordered schedule of typed events the fabric
// executes deterministically from the event queue. Scenarios build a plan,
// hand it to the TestBed, and never mutate fault state mid-run — which is
// what keeps seeded runs a pure function of (plan, seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/graph.hpp"
#include "sim/time.hpp"

namespace p4u::faults {

/// Random fault injection on switch-to-switch hops (§5: dropped update
/// packets, update packet reordering). Targeted faults are FaultEvents.
struct FaultModel {
  double control_drop_prob = 0.0;    // applies to UIM/UNM/... messages
  double data_drop_prob = 0.0;       // applies to DataHeader packets
  sim::Duration reorder_jitter = 0;  // extra uniform [0, jitter] per hop
};

enum class FaultKind : std::uint8_t {
  kLinkDown,       // both directions of (a, b) blackhole at-send
  kLinkUp,         // link (a, b) restored
  kSwitchCrash,    // node drops enqueued packets, wipes registers/rules,
                   // rejects installs until restarted
  kSwitchRestart,  // node serves again (state stays wiped)
  kSetModel,       // swap the probabilistic FaultModel from this instant on
};

const char* to_string(FaultKind k);

/// One scheduled fault. `a`/`b` name link endpoints for link events; `a`
/// names the node for switch events; `model` carries the new probabilistic
/// section for kSetModel.
struct FaultEvent {
  sim::Time at = 0;
  FaultKind kind = FaultKind::kLinkDown;
  net::NodeId a = net::kNoNode;
  net::NodeId b = net::kNoNode;
  FaultModel model;
};

/// Declarative fault schedule: the initial probabilistic model plus typed
/// events in time order (ties keep insertion order, matching the
/// simulator's (at, seq) tie-break). Building a plan executes nothing.
class FaultPlan {
 public:
  /// Probabilistic section in effect from t=0 (kSetModel events replace it).
  FaultModel model;

  FaultPlan& link_down(sim::Time at, net::NodeId a, net::NodeId b);
  FaultPlan& link_up(sim::Time at, net::NodeId a, net::NodeId b);
  /// Down at `at`, back up at `at + outage`.
  FaultPlan& link_down_for(sim::Time at, net::NodeId a, net::NodeId b,
                           sim::Duration outage);
  FaultPlan& switch_crash(sim::Time at, net::NodeId n);
  FaultPlan& switch_restart(sim::Time at, net::NodeId n);
  /// Crash at `at`, restart at `at + outage`.
  FaultPlan& switch_crash_for(sim::Time at, net::NodeId n,
                              sim::Duration outage);
  FaultPlan& set_model(sim::Time at, FaultModel m);

  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return events_.empty() && model.control_drop_prob == 0.0 &&
           model.data_drop_prob == 0.0 && model.reorder_jitter == 0;
  }

  /// Throws std::invalid_argument when an event names a node outside `g`, a
  /// link `g` does not have, a negative time, or an out-of-range
  /// probability. The TestBed validates before wiring the fabric so a typo
  /// in a scenario fails loudly instead of silently never firing.
  void validate(const net::Graph& g) const;

 private:
  FaultPlan& push(FaultEvent e);
  std::vector<FaultEvent> events_;
};

/// Parses the bench CLI's `--link-down t:u-v:dur` spec (milliseconds :
/// endpoint pair : milliseconds). Returns true and appends to `plan` on
/// success; false with the flag's error message style otherwise.
bool parse_link_down_spec(const std::string& spec, FaultPlan& plan,
                          std::string* error);

}  // namespace p4u::faults
