// Controller-side recovery: the shared pieces every controller (P4Update,
// ez-Segway, Central) uses to survive the failure domain.
//
//   - RecoveryParams: per-update completion timers with exponential backoff
//     and a retry cap. A controller that issued an update arms a timer; on
//     expiry it resends the update messages; once the cap is exhausted it
//     settles the update at a terminal outcome (rolled back when the old
//     path still carries traffic, abandoned when it cannot).
//   - HealthView: the controller's belief about dead links and crashed
//     switches, fed by the control channel's failure notifications. Answers
//     "is this path still viable?" and "find me a repair path around the
//     faults" — the re-segmentation query.
//
// Recovery is opt-in (enabled = false keeps historical behavior bit-exact):
// fault-free benches must not pay for timers they never need.
#pragma once

#include <set>
#include <vector>

#include "net/graph.hpp"
#include "net/paths.hpp"
#include "sim/time.hpp"

namespace p4u::faults {

struct RecoveryParams {
  /// Master switch; everything below is inert when false.
  bool enabled = false;
  /// First completion timeout after issuing an update.
  sim::Duration initial_timeout = sim::milliseconds(200);
  /// Timeout multiplier per retry (attempt k waits initial * backoff^k).
  double backoff = 2.0;
  /// Resend attempts before settling at a terminal outcome.
  int max_retries = 4;

  /// Timeout for retry `attempt` (0-based), with saturation: the knobs are
  /// user input and must not overflow into the past.
  [[nodiscard]] sim::Duration timeout_for(int attempt) const;
};

/// Dead-element belief. Deliberately a *belief*: it tracks what the
/// controller has been told, which trails reality by the detection latency.
class HealthView {
 public:
  void link_down(net::LinkId l) { down_links_.insert(l); }
  void link_up(net::LinkId l) { down_links_.erase(l); }
  void switch_down(net::NodeId n) { down_nodes_.insert(n); }
  void switch_up(net::NodeId n) { down_nodes_.erase(n); }

  [[nodiscard]] bool link_ok(net::LinkId l) const {
    return down_links_.count(l) == 0;
  }
  [[nodiscard]] bool node_ok(net::NodeId n) const {
    return down_nodes_.count(n) == 0;
  }
  [[nodiscard]] bool all_healthy() const {
    return down_links_.empty() && down_nodes_.empty();
  }

  /// True when every node and every hop of `path` is believed alive.
  [[nodiscard]] bool path_ok(const net::Graph& g, const net::Path& path) const;

  /// True when `path` traverses the given element (node `n`, or the link
  /// between `a` and `b`).
  [[nodiscard]] static bool path_uses_node(const net::Path& path,
                                           net::NodeId n);
  [[nodiscard]] static bool path_uses_link(const net::Graph& g,
                                           const net::Path& path,
                                           net::LinkId l);

  /// Shortest path src -> dst through believed-healthy elements only;
  /// nullopt when the faults disconnect the pair (the Abandoned case).
  [[nodiscard]] std::optional<net::Path> repair_path(
      const net::Graph& g, net::NodeId src, net::NodeId dst) const;

 private:
  // Ordered sets: recovery scans iterate these, and iteration order must be
  // deterministic (determinism contract).
  std::set<net::LinkId> down_links_;
  std::set<net::NodeId> down_nodes_;
};

}  // namespace p4u::faults
