#include "faults/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace p4u::faults {

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kSwitchCrash: return "switch-crash";
    case FaultKind::kSwitchRestart: return "switch-restart";
    case FaultKind::kSetModel: return "set-model";
  }
  return "?";
}

FaultPlan& FaultPlan::push(FaultEvent e) {
  // Keep events sorted by time with ties in insertion order, so the plan's
  // declaration order and the simulator's (at, seq) tie-break agree.
  auto it = std::upper_bound(
      events_.begin(), events_.end(), e,
      [](const FaultEvent& x, const FaultEvent& y) { return x.at < y.at; });
  events_.insert(it, e);
  return *this;
}

FaultPlan& FaultPlan::link_down(sim::Time at, net::NodeId a, net::NodeId b) {
  return push({at, FaultKind::kLinkDown, a, b, {}});
}

FaultPlan& FaultPlan::link_up(sim::Time at, net::NodeId a, net::NodeId b) {
  return push({at, FaultKind::kLinkUp, a, b, {}});
}

FaultPlan& FaultPlan::link_down_for(sim::Time at, net::NodeId a, net::NodeId b,
                                    sim::Duration outage) {
  link_down(at, a, b);
  return link_up(at + outage, a, b);
}

FaultPlan& FaultPlan::switch_crash(sim::Time at, net::NodeId n) {
  return push({at, FaultKind::kSwitchCrash, n, net::kNoNode, {}});
}

FaultPlan& FaultPlan::switch_restart(sim::Time at, net::NodeId n) {
  return push({at, FaultKind::kSwitchRestart, n, net::kNoNode, {}});
}

FaultPlan& FaultPlan::switch_crash_for(sim::Time at, net::NodeId n,
                                       sim::Duration outage) {
  switch_crash(at, n);
  return switch_restart(at + outage, n);
}

FaultPlan& FaultPlan::set_model(sim::Time at, FaultModel m) {
  return push({at, FaultKind::kSetModel, net::kNoNode, net::kNoNode, m});
}

namespace {

void validate_model(const FaultModel& m) {
  const auto prob_ok = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!prob_ok(m.control_drop_prob) || !prob_ok(m.data_drop_prob)) {
    throw std::invalid_argument(
        "FaultPlan: drop probability must be within [0, 1]");
  }
  if (m.reorder_jitter < 0) {
    throw std::invalid_argument("FaultPlan: reorder_jitter must be >= 0");
  }
}

}  // namespace

void FaultPlan::validate(const net::Graph& g) const {
  validate_model(model);
  const auto node_ok = [&g](net::NodeId n) {
    return n >= 0 && static_cast<std::size_t>(n) < g.node_count();
  };
  for (const FaultEvent& e : events_) {
    if (e.at < 0) {
      throw std::invalid_argument("FaultPlan: event time must be >= 0");
    }
    switch (e.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
        if (!node_ok(e.a) || !node_ok(e.b) || !g.find_link(e.a, e.b)) {
          throw std::invalid_argument(
              "FaultPlan: no link between nodes " + std::to_string(e.a) +
              " and " + std::to_string(e.b));
        }
        break;
      case FaultKind::kSwitchCrash:
      case FaultKind::kSwitchRestart:
        if (!node_ok(e.a)) {
          throw std::invalid_argument("FaultPlan: unknown switch " +
                                      std::to_string(e.a));
        }
        break;
      case FaultKind::kSetModel:
        validate_model(e.model);
        break;
    }
  }
}

bool parse_link_down_spec(const std::string& spec, FaultPlan& plan,
                          std::string* error) {
  // Format: t:u-v:dur — all three fields required, t/dur in milliseconds.
  const auto fail = [error]() {
    if (error != nullptr) {
      *error =
          "--link-down requires a t:u-v:dur spec (milliseconds, e.g. "
          "50:2-3:2000)";
    }
    return false;
  };
  const std::size_t c1 = spec.find(':');
  const std::size_t c2 = spec.rfind(':');
  if (c1 == std::string::npos || c2 == c1) return fail();
  const std::string t_part = spec.substr(0, c1);
  const std::string link_part = spec.substr(c1 + 1, c2 - c1 - 1);
  const std::string dur_part = spec.substr(c2 + 1);
  const std::size_t dash = link_part.find('-');
  if (dash == std::string::npos) return fail();

  const auto parse_num = [](const std::string& s, long long* out) {
    if (s.empty()) return false;
    for (const char ch : s) {
      if (ch < '0' || ch > '9') return false;
    }
    try {
      *out = std::stoll(s);
    } catch (const std::exception&) {
      return false;
    }
    return true;
  };
  long long t_ms = 0;
  long long u = 0;
  long long v = 0;
  long long dur_ms = 0;
  if (!parse_num(t_part, &t_ms) || !parse_num(link_part.substr(0, dash), &u) ||
      !parse_num(link_part.substr(dash + 1), &v) ||
      !parse_num(dur_part, &dur_ms) || dur_ms <= 0) {
    return fail();
  }
  plan.link_down_for(sim::milliseconds(t_ms), static_cast<net::NodeId>(u),
                     static_cast<net::NodeId>(v), sim::milliseconds(dur_ms));
  return true;
}

}  // namespace p4u::faults
