#include "faults/recovery.hpp"

#include <algorithm>

namespace p4u::faults {

sim::Duration RecoveryParams::timeout_for(int attempt) const {
  double t = static_cast<double>(initial_timeout);
  for (int i = 0; i < attempt; ++i) {
    t *= backoff;
    if (t >= static_cast<double>(sim::kTimeInfinity)) {
      return sim::kTimeInfinity;
    }
  }
  return static_cast<sim::Duration>(t);
}

bool HealthView::path_ok(const net::Graph& g, const net::Path& path) const {
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (!node_ok(path[i])) return false;
    if (i + 1 < path.size()) {
      const auto l = g.find_link(path[i], path[i + 1]);
      if (!l || !link_ok(*l)) return false;
    }
  }
  return true;
}

bool HealthView::path_uses_node(const net::Path& path, net::NodeId n) {
  return std::find(path.begin(), path.end(), n) != path.end();
}

bool HealthView::path_uses_link(const net::Graph& g, const net::Path& path,
                                net::LinkId l) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto hop = g.find_link(path[i], path[i + 1]);
    if (hop && *hop == l) return true;
  }
  return false;
}

std::optional<net::Path> HealthView::repair_path(const net::Graph& g,
                                                 net::NodeId src,
                                                 net::NodeId dst) const {
  const std::vector<net::LinkId> links(down_links_.begin(), down_links_.end());
  const std::vector<net::NodeId> nodes(down_nodes_.begin(), down_nodes_.end());
  return net::shortest_path_avoiding_elements(g, src, dst, links, nodes);
}

}  // namespace p4u::faults
