// InlineFn: a fixed-capacity, allocation-free std::function<void()>.
//
// The simulator core schedules millions of handlers per campaign; with
// std::function every capture larger than the implementation's small-buffer
// (typically 16-32 bytes — any handler owning a Packet) costs a heap
// round-trip per event. InlineFn stores the callable inline, always:
// a callable larger than the capacity is a compile error, not a silent
// heap fallback, so the event hot path provably never allocates.
//
// Contract:
//   - move-only (like the handlers it wraps: they own Packets and
//     std::function continuations),
//   - the wrapped callable must fit in Capacity bytes and be
//     max_align_t-aligned or less (static_assert-enforced),
//   - invoking an empty InlineFn is undefined; check with operator bool.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace p4u::sim {

template <std::size_t Capacity>
class InlineFn {
 public:
  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors
                     // std::function's implicit conversion from callables
    emplace(std::forward<F>(f));
  }

  /// Constructs the callable directly in this object's inline buffer,
  /// destroying any current callable first. This is the zero-relocation
  /// path the scheduler uses to build a handler in its slab slot: the
  /// capture is copied exactly once, from the caller's frame.
  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    static_assert(sizeof(D) <= Capacity,
                  "handler capture too large for InlineFn: grow the "
                  "Simulator::Handler capacity or shrink the capture");
    static_assert(alignof(D) <= alignof(std::max_align_t),
                  "over-aligned handler capture");
    static_assert(std::is_nothrow_move_constructible_v<D> ||
                      std::is_copy_constructible_v<D>,
                  "handler must be move-constructible");
    reset();
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    ops_ = &ops_for<D>;
  }

  /// Destroys the held callable (if any) and leaves the object empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;  // move-construct into
                                                      // dst, destroy src
    void (*destroy)(void*) noexcept;  // nullptr when ~D() is trivial, so
                                      // the dispatch loop skips the call
  };

  template <typename D>
  static constexpr void (*destroy_for())(void*) noexcept {
    if constexpr (std::is_trivially_destructible_v<D>) {
      return nullptr;
    } else {
      return [](void* p) noexcept { static_cast<D*>(p)->~D(); };
    }
  }

  template <typename D>
  static constexpr Ops ops_for{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      destroy_for<D>(),
  };

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace p4u::sim
