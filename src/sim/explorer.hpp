// Explorer: stateless DFS/DPOR enumeration of scheduling decisions.
//
// Each explored interleaving is a fresh deterministic simulation steered by
// a forced decision prefix (ReplayStrategy) and observed through a
// RecordingStrategy, so the explorer needs no snapshot/restore support from
// the simulator — determinism *is* the checkpoint. The search tree's nodes
// are decision points (co-enabled pick sets, fault coins, jitter bounds);
// DFS expands one non-default branch per fresh run and rides the recorded
// run down its default spine, so the number of executions tracks the number
// of distinct interleavings, not the number of tree nodes.
//
// Reduction (partial order, Godefroid-style sleep sets): the co-enabled set
// is used as the (trivially sound) persistent set, and a sleep set prunes
// permutations of independent events. After exploring option x at a node,
// x goes to sleep for the node's later siblings; descending through option
// y keeps asleep only the events independent of y (tags_independent). A
// path whose forced continuation would execute a sleeping event is
// redundant — some earlier sibling's subtree already covers it — and is cut
// without being counted. Fault-coin and jitter branches conservatively wake
// everything (the fault changes the enabled-event structure).
//
// Every failing execution is minimized (trailing default decisions trimmed,
// re-validated by replay) and handed to the failure callback as a
// replayable Schedule artifact.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/schedule.hpp"
#include "sim/schedule_strategy.hpp"

namespace p4u::sim {

/// Search bounds and reduction toggles.
struct ExplorerOptions {
  /// Maximum number of *branch* decisions along one path; deeper decision
  /// points are not branched (the run still completes with defaults, and
  /// the truncation is reported in max_depth_hits). 0 = unlimited.
  std::size_t max_depth = 0;
  /// Hard ceiling on executions; the search reports exhausted=false when
  /// it bites. 0 = unlimited.
  std::uint64_t max_runs = 0;
  /// How many fault coins may land "true" along one path (bounded fault
  /// placement). 0 = coins never branch, every path is fault-free.
  std::uint64_t max_faults = 0;
  /// Branch reorder-jitter points over {0, max_extra} instead of pinning
  /// them to 0.
  bool branch_jitter = false;
  /// Sleep-set reduction on pick nodes; off = plain exhaustive DFS.
  bool dpor = true;
};

struct ExplorerStats {
  std::uint64_t runs = 0;           // simulations executed (incl. re-checks)
  std::uint64_t interleavings = 0;  // distinct complete paths counted
  std::uint64_t choice_points = 0;  // branch nodes discovered (>1 option)
  std::uint64_t sleep_pruned = 0;   // branches skipped as sleeping
  std::uint64_t redundant_paths = 0;  // paths cut (continuation asleep)
  std::uint64_t max_frontier = 0;   // peak count of pending branches
  std::uint64_t max_depth_hits = 0; // paths truncated at max_depth
  std::uint64_t failures = 0;       // property-violating interleavings
  bool exhausted = true;            // false if a bound stopped the search
};

class Explorer {
 public:
  /// Verdict of one steered simulation.
  struct Verdict {
    bool ok = true;
    std::string failure;  // human-readable property violation
  };

  /// Executes one complete simulation under `strategy` and judges it. Must
  /// build a fresh deterministic system each call (same inputs, no shared
  /// mutable state between calls).
  using RunFn = std::function<Verdict(ScheduleStrategy& strategy)>;

  /// Receives the minimized, replayable schedule of each failing path.
  using FailureFn =
      std::function<void(const Schedule& schedule, const std::string& what)>;

  Explorer(RunFn run, ExplorerOptions options);

  void set_failure_handler(FailureFn f) { on_failure_ = std::move(f); }

  /// Runs the search to exhaustion (or to its bounds) and returns the
  /// totals. Call once per Explorer.
  ExplorerStats explore();

 private:
  struct Recorded {
    Schedule schedule;
    std::vector<std::vector<ChoiceOption>> picks;
    Verdict verdict;
  };

  [[nodiscard]] Recorded run_once(const std::vector<ChoiceRec>& prefix);
  [[nodiscard]] bool budget_left() const;
  /// Explores the subtree of the state reached by `prefix`. `sleep` is the
  /// sleep set at that state (events whose immediate execution is covered
  /// by an earlier sibling's subtree), `reuse` an already-recorded run
  /// whose decisions extend `prefix` with defaults, `depth` the number of
  /// branch nodes inside `prefix`, `faults_used` the count of true coins.
  void expand(std::vector<ChoiceRec> prefix, std::vector<ChoiceOption> sleep,
              std::unique_ptr<Recorded> reuse, std::size_t depth,
              std::uint64_t faults_used);
  void count_leaf(const Recorded& r, bool truncated);
  void report_failure(const Recorded& r);

  RunFn run_;
  ExplorerOptions options_;
  FailureFn on_failure_;
  ExplorerStats stats_;
  std::uint64_t frontier_ = 0;  // pending sibling branches across the stack
};

}  // namespace p4u::sim
