// Descriptive statistics used by the experiment harness: means, percentiles,
// empirical CDFs, and 99% confidence intervals (Fig. 8 reports mean ratios
// of 30 runs with a 99% CI; Fig. 4/7 report empirical CDFs of 30 runs).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace p4u::sim {

/// Accumulates samples and answers summary queries. Samples are stored, so
/// percentile queries are exact (experiment scale is tens to thousands).
/// Order statistics come from a lazily rebuilt sorted cache, so a summary
/// (p50 + p95 + min + max) sorts once, not once per query. Not thread-safe
/// — even const queries may rebuild the cache; campaigns give every
/// parallel job its own instance and merge on one thread.
class Samples {
 public:
  void add(double x) {
    xs_.push_back(x);
    dirty_ = true;
  }
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;  // sample stddev (n-1)

  /// Exact percentile via linear interpolation; p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  /// Half-width of the normal-approximation CI at the given z (2.576 = 99%).
  [[nodiscard]] double ci_halfwidth(double z = 2.576) const;

  /// Sorted view of the samples (the empirical CDF support). The returned
  /// reference stays valid until the next add.
  [[nodiscard]] const std::vector<double>& sorted() const;

  [[nodiscard]] const std::vector<double>& raw() const { return xs_; }

 private:
  std::vector<double> xs_;
  mutable std::vector<double> sorted_cache_;
  mutable bool dirty_ = true;
};

/// One point of an empirical CDF: P[X <= value] = cumulative.
struct CdfPoint {
  double value;
  double cumulative;
};

/// Empirical CDF of the samples (steps at each sorted sample).
std::vector<CdfPoint> empirical_cdf(const Samples& s);

/// Renders "mean=… p50=… p95=… n=…" for logs and bench output.
std::string summary_line(const Samples& s);

}  // namespace p4u::sim
