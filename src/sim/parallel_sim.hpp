// Sharded deterministic parallel DES: conservative-lookahead multi-core
// execution with results byte-identical to a single shard (DESIGN.md §13).
//
// The topology's switches are partitioned into K logical processes
// (net::partition_shards); each shard owns a full Simulator — its own
// 4-ary indexed heap, handler slab, and clock — plus an OrderDomain that
// keys every event by (origin node, per-origin counter) instead of the
// global insertion sequence. That key is a pure function of the simulated
// system, so the heaps pop the same events in the same per-node order for
// every K, and merged metrics/reports come out byte-identical.
//
// Synchronization is classic conservative lookahead: all cross-shard
// interactions ride links (or the control channel), so an event executing
// at time t can only affect another shard at >= t + delta, where delta is
// the minimum cross-shard latency. The engine therefore executes windows
//
//     [T_min, min(T_min + delta, next checkpoint))
//
// in parallel — one pinned worker thread per shard, the caller's thread
// acting as shard 0 — with cross-shard events buffered in single-writer
// mailboxes and drained by the receiving shard after a barrier. T_min is
// the global minimum next-event time, so sparse phases (timer tails,
// drained updates) cost one window per event cluster, not one per delta of
// virtual time. Barriers are sense-free centralized spin barriers
// (generation counter + bounded spin, then yield): at fat-tree lookahead
// (25 us windows) a futex sleep per window would dominate the shard work.
//
// K = 1 runs the same keyed semantics inline — no threads, no mailboxes,
// no windows — and is the baseline the byte-identity gate compares against.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace p4u::sim {

/// Runs the topology on K shard-local Simulators under conservative time
/// windows. Routing (which node lives on which shard) belongs to the
/// caller: the fabric resolves the executing and owning shard and calls
/// schedule_from; this class only moves keyed events and time forward.
class ShardedSimulator {
 public:
  using Handler = Simulator::Handler;
  /// Runs between windows (single-threaded, on the caller's thread) at
  /// every multiple of the checkpoint cadence — the invariant monitor's
  /// hook. All events strictly before the checkpoint time have executed
  /// and none at-or-after it has, for every K, so whatever the hook reads
  /// is shard-count-independent.
  using Checkpoint = std::function<void()>;

  /// `origin_count` = node count + 1 (biased: index 0 is the controller
  /// context, node -1). `lookahead` is the minimum cross-shard latency and
  /// must be positive when shards > 1 — a zero-latency cut link would
  /// leave no safe window at all.
  ShardedSimulator(int shards, std::size_t origin_count, Duration lookahead);

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  [[nodiscard]] int shards() const noexcept {
    return static_cast<int>(sims_.size());
  }
  [[nodiscard]] Duration lookahead() const noexcept { return lookahead_; }

  /// Shard-local simulator (its OrderDomain is already installed). Shard 0
  /// additionally owns the controller context and every root-scheduled
  /// event (tag.node == -1).
  [[nodiscard]] Simulator& shard(int s) { return *sims_.at(idx(s)); }
  [[nodiscard]] const Simulator& shard(int s) const {
    return *sims_.at(idx(s));
  }

  /// Schedules an event from `exec_shard`'s execution context onto
  /// `target_shard`. The order key is drawn from the executing shard's
  /// domain (under its current origin), so key assignment follows the
  /// deterministic per-node handler sequence regardless of which heap the
  /// event lands in. Outside run() — setup code on the caller's thread —
  /// the event is inserted directly; inside run(), cross-shard events go
  /// through the mailbox and must respect the lookahead.
  template <typename F>
  void schedule_from(int exec_shard, int target_shard, Time at, EventTag tag,
                     F&& f) {
    const std::uint64_t word =
        shard(exec_shard).order_domain()->next_word();
    if (exec_shard == target_shard || !running_) {
      shard(target_shard).schedule_keyed(at, word, tag,
                                         Handler(std::forward<F>(f)));
      return;
    }
    post_cross(exec_shard, target_shard, at, word, tag,
               Handler(std::forward<F>(f)));
  }

  /// Runs all shards until every queue drains (events parked at
  /// kTimeInfinity never execute) or virtual time passes `until`. Returns
  /// the number of events executed by this call across all shards.
  /// `checkpoint`, when set with a positive `cadence`, fires between
  /// windows at each multiple of `cadence`.
  std::size_t run(Time until = kTimeInfinity,
                  const Checkpoint& checkpoint = {}, Duration cadence = 0);

  /// Pre-sizes each shard's heap and slab for about `n` pending events
  /// split evenly across shards.
  void reserve(std::size_t n);

  /// Totals across shards (deterministic: same event set for every K).
  [[nodiscard]] std::uint64_t executed() const noexcept;
  /// Per-shard executed-event count — the sim.shard_events gauge.
  [[nodiscard]] std::uint64_t shard_events(int s) const {
    return shard(s).executed();
  }
  /// Per-shard ready-queue high-water mark — feeds sim.pending_peak.
  [[nodiscard]] std::size_t shard_pending_peak(int s) const {
    return shard(s).pending_peak();
  }

 private:
  /// Centralized spin barrier. A generation counter doubles as the sense:
  /// arrivals increment the count; the last arrival resets it and bumps
  /// the generation, releasing the spinners. Release/acquire on the two
  /// atomics carries every pre-barrier write (mailbox buffers, next-event
  /// times) to every post-barrier reader.
  class SpinBarrier {
   public:
    explicit SpinBarrier(int parties) : parties_(parties) {}
    void arrive_and_wait();

   private:
    const int parties_;
    std::atomic<int> count_{0};
    std::atomic<std::uint64_t> generation_{0};
  };

  /// A keyed event in flight between shards. Written only by the sending
  /// shard's worker during a window, read only by the receiving shard
  /// after the next barrier: single-producer single-consumer by phase, no
  /// locks needed beyond the barrier itself.
  struct CrossEvent {
    Time at;
    std::uint64_t word;
    EventTag tag;
    Handler fn;
  };
  struct Mailbox {
    std::vector<CrossEvent> buf;
  };

  static std::size_t idx(int s) { return static_cast<std::size_t>(s); }

  void post_cross(int exec_shard, int target_shard, Time at,
                  std::uint64_t word, EventTag tag, Handler&& fn);
  std::size_t run_single(Time until, const Checkpoint& checkpoint,
                         Duration cadence);
  std::size_t run_windows(Time until, const Checkpoint& checkpoint,
                          Duration cadence);
  void worker_loop(int s, Time until, const Checkpoint& checkpoint,
                   Duration cadence);

  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<std::unique_ptr<OrderDomain>> domains_;
  std::vector<std::vector<Mailbox>> mail_;  // mail_[from][to]
  Duration lookahead_;
  bool running_ = false;

  // Window-loop shared state; synchronized exclusively by barrier_.
  SpinBarrier barrier_;
  std::vector<Time> next_time_;    // per-shard next event time, post-drain
  std::vector<Time> window_hi_;    // per-shard current window upper bound
  std::vector<std::size_t> ran_;   // per-shard events executed this run()
  // Checkpoint-hook failures only: written by shard 0 before the
  // checkpoint barrier, read by everyone after it — never mid-round.
  // Worker errors travel as a halt sentinel in next_time_ instead, so
  // every phase-2 decision is a pure function of barrier-published data
  // (a live flag read mid-round deadlocks the barrier; see the .cpp).
  std::atomic<bool> checkpoint_error_{false};
  std::vector<std::exception_ptr> errors_;
};

}  // namespace p4u::sim
