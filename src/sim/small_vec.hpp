// SmallVec: a vector with inline storage for its first N elements.
//
// Packet headers carry tiny lists (a UIM's extra destination-tree child
// ports, an ez-Segway command's SegmentDone recipients) that are almost
// always empty or a handful of entries. std::vector heap-allocates for the
// first element, which every Packet copy/clone then pays again; SmallVec
// keeps up to N elements inline and only spills to the heap past that.
//
// Deliberately minimal: trivially-copyable T only (the headers store ints
// and small PODs), so grow/copy are memcpy-class operations and the type
// stays cheap to move through the std::variant packet fabric.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <type_traits>

namespace p4u::sim {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is restricted to trivially copyable elements");
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept = default;
  SmallVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  SmallVec(const SmallVec& other) { assign(other.begin(), other.end()); }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVec(SmallVec&& other) noexcept {
    take_from(other);
  }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release();
      take_from(other);
    }
    return *this;
  }

  ~SmallVec() { release(); }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// True while the elements live in the inline buffer (no heap spill).
  [[nodiscard]] bool inlined() const noexcept { return data_ == inline_data(); }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] iterator begin() noexcept { return data_; }
  [[nodiscard]] iterator end() noexcept { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data_; }
  [[nodiscard]] const_iterator end() const noexcept { return data_ + size_; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] T& front() noexcept { return data_[0]; }
  [[nodiscard]] const T& front() const noexcept { return data_[0]; }
  [[nodiscard]] T& back() noexcept { return data_[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return data_[size_ - 1]; }

  void push_back(const T& v) {
    if (size_ == capacity_) grow(capacity_ * 2);
    data_[size_++] = v;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    push_back(T{std::forward<Args>(args)...});
    return back();
  }

  void pop_back() noexcept { --size_; }
  void clear() noexcept { size_ = 0; }

  template <typename It>
  void assign(It first, It last) {
    clear();
    for (; first != last; ++first) push_back(*first);
  }

  void reserve(std::size_t n) {
    if (n > capacity_) grow(n);
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator!=(const SmallVec& a, const SmallVec& b) {
    return !(a == b);
  }

 private:
  T* inline_data() noexcept { return reinterpret_cast<T*>(inline_); }
  const T* inline_data() const noexcept {
    return reinterpret_cast<const T*>(inline_);
  }

  void grow(std::size_t want) {
    const std::size_t cap = std::max<std::size_t>(want, N * 2);
    T* heap = new T[cap];
    std::copy(data_, data_ + size_, heap);
    release();
    data_ = heap;
    capacity_ = static_cast<std::uint32_t>(cap);
  }

  void release() noexcept {
    if (!inlined()) delete[] data_;
    data_ = inline_data();
    capacity_ = N;
  }

  /// Move support: inline payloads copy (trivial, N is tiny); a heap
  /// allocation is stolen. `other` is left empty and inline either way.
  void take_from(SmallVec& other) noexcept {
    if (other.inlined()) {
      std::copy(other.begin(), other.end(), inline_data());
      size_ = other.size_;
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
    }
    other.size_ = 0;
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = inline_data();
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = N;
};

}  // namespace p4u::sim
