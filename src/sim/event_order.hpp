// EventOrder: the (at, seq) total order every determinism claim rests on.
//
// An event's position in the execution is decided by its timestamp, ties
// broken by scheduling sequence number. The heap in sim/event_queue.hpp,
// the co-enabled-set collection the ScheduleStrategy sees, and schedule
// replay validation (sim/schedule.hpp) all compare with this one function,
// so the order cannot silently fork between the live core and the replay
// checker.
//
// The seq operand is "seq-monotone": any word that strictly increases with
// the scheduling sequence number compares equivalently. The event core
// exploits this by packing (seq << kSlotBits) | slot into one word — the
// slot bits sit below every seq bit and can never flip a comparison.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace p4u::sim {

/// Ordering key of one scheduled event.
struct EventKey {
  Time at = 0;
  std::uint64_t seq = 0;
};

struct EventOrder {
  /// Strict "earlier-than": by timestamp, then by sequence word. `seq` is
  /// unique per simulator, so this is a strict total order.
  [[nodiscard]] static constexpr bool before(Time a_at, std::uint64_t a_seq,
                                             Time b_at,
                                             std::uint64_t b_seq) noexcept {
    if (a_at != b_at) return a_at < b_at;
    return a_seq < b_seq;
  }

  [[nodiscard]] static constexpr bool before(const EventKey& a,
                                             const EventKey& b) noexcept {
    return before(a.at, a.seq, b.at, b.seq);
  }

  /// Keys compare equal only when they are the same event.
  [[nodiscard]] static constexpr bool equal(const EventKey& a,
                                            const EventKey& b) noexcept {
    return a.at == b.at && a.seq == b.seq;
  }
};

}  // namespace p4u::sim
