#include "sim/trace.hpp"

#include <sstream>

namespace p4u::sim {

const char* to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kRuleInstalled: return "rule-installed";
    case TraceKind::kVerifyAccepted: return "verify-accepted";
    case TraceKind::kVerifyRejected: return "verify-rejected";
    case TraceKind::kVerifyDeferred: return "verify-deferred";
    case TraceKind::kMessageSent: return "message-sent";
    case TraceKind::kMessageDropped: return "message-dropped";
    case TraceKind::kControllerAlarm: return "controller-alarm";
    case TraceKind::kUpdateCompleted: return "update-completed";
    case TraceKind::kCongestionDefer: return "congestion-defer";
    case TraceKind::kPriorityRaised: return "priority-raised";
    case TraceKind::kLoopDetected: return "loop-detected";
    case TraceKind::kBlackholeDetected: return "blackhole-detected";
    case TraceKind::kCapacityViolated: return "capacity-violated";
    case TraceKind::kPacketDelivered: return "packet-delivered";
    case TraceKind::kPacketExpired: return "packet-expired";
    case TraceKind::kRuleCleaned: return "rule-cleaned";
    case TraceKind::kLinkDown: return "link-down";
    case TraceKind::kLinkUp: return "link-up";
    case TraceKind::kSwitchCrash: return "switch-crash";
    case TraceKind::kSwitchRestart: return "switch-restart";
    case TraceKind::kInfo: return "info";
  }
  return "unknown";
}

std::size_t Trace::count(TraceKind k) const {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.kind == k) ++n;
  }
  return n;
}

const TraceEntry* Trace::first(TraceKind k) const {
  for (const auto& e : entries_) {
    if (e.kind == k) return &e;
  }
  return nullptr;
}

std::string Trace::dump() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  for (const auto& e : entries_) {
    os << "t=" << to_ms(e.at) << "ms node=" << e.node << " "
       << to_string(e.kind) << " flow=" << e.flow << " a=" << e.a
       << " b=" << e.b;
    if (!e.note.empty()) os << " | " << e.note;
    os << '\n';
  }
  return os.str();
}

}  // namespace p4u::sim
