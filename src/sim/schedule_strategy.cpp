#include "sim/schedule_strategy.hpp"

namespace p4u::sim {

const char* to_string(EventClass c) {
  switch (c) {
    case EventClass::kInternal: return "internal";
    case EventClass::kDelivery: return "delivery";
    case EventClass::kService: return "service";
    case EventClass::kInstall: return "install";
    case EventClass::kControl: return "control";
    case EventClass::kFault: return "fault";
    case EventClass::kTimer: return "timer";
    case EventClass::kScenario: return "scenario";
  }
  return "?";
}

const char* to_string(CoinKind k) {
  switch (k) {
    case CoinKind::kCtrlDrop: return "ctrl_drop";
    case CoinKind::kDataDrop: return "data_drop";
    case CoinKind::kReorder: return "reorder";
  }
  return "?";
}

bool tags_independent(const EventTag& a, const EventTag& b) {
  // Untagged work, fault injections, and scenario stimuli may touch
  // anything (topology, many switches, the monitor) — never commute them.
  const auto opaque = [](EventClass c) {
    return c == EventClass::kInternal || c == EventClass::kFault ||
           c == EventClass::kScenario;
  };
  if (opaque(a.cls) || opaque(b.cls)) return false;
  // The controller is a single serialized service queue: any two control
  // events contend for its busy window regardless of node/flow.
  if (a.cls == EventClass::kControl && b.cls == EventClass::kControl) {
    return false;
  }
  // Same switch (or an event of global scope) => shared device state.
  if (a.node < 0 || b.node < 0 || a.node == b.node) return false;
  // Same flow across different switches still shares per-flow update
  // state (UIB rows, monitor path walks).
  if (a.flow != 0 && a.flow == b.flow) return false;
  return true;
}

std::size_t SeededStrategy::pick(const std::vector<ChoiceOption>& options) {
  (void)options;
  return 0;  // options arrive in (at, seq) order; 0 is the historical min
}

bool SeededStrategy::coin(const CoinPoint& cp, Rng& rng) {
  return rng.uniform01() < cp.prob;
}

Duration SeededStrategy::jitter(const CoinPoint& cp, Duration max_extra,
                                Rng& rng) {
  (void)cp;
  return static_cast<Duration>(
      rng.uniform(static_cast<std::uint64_t>(max_extra) + 1));
}

}  // namespace p4u::sim
