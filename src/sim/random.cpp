#include "sim/random.hpp"

#include <cmath>
#include <numbers>

namespace p4u::sim {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed all 256 bits from splitmix64, per the xoshiro authors' guidance.
  for (auto& s : s_) s = splitmix64(seed);
  // Avoid the all-zero state (astronomically unlikely, but cheap to exclude).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t n) {
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform01();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 == 0.0);
  const double u2 = uniform01();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

double Rng::truncated_normal(double mean, double stddev, double lo) {
  for (int i = 0; i < 1024; ++i) {
    double x = normal(mean, stddev);
    if (x >= lo) return x;
  }
  return lo;  // pathological parameters; pin to the floor
}

Rng Rng::fork() { return Rng((*this)()); }

Duration exponential_ms(Rng& rng, double mean_ms) {
  return milliseconds_f(rng.exponential(mean_ms));
}

Duration truncated_normal_ms(Rng& rng, double mean_ms, double stddev_ms,
                             double lo_ms) {
  return milliseconds_f(rng.truncated_normal(mean_ms, stddev_ms, lo_ms));
}

}  // namespace p4u::sim
