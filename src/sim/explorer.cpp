#include "sim/explorer.hpp"

#include <algorithm>
#include <utility>

namespace p4u::sim {

namespace {

bool is_asleep(const std::vector<ChoiceOption>& sleep, std::uint64_t seq) {
  for (const ChoiceOption& s : sleep) {
    if (s.key.seq == seq) return true;
  }
  return false;
}

/// Sleep set after executing the event tagged `taken`: everything that
/// commutes with it stays asleep, everything dependent wakes up.
std::vector<ChoiceOption> filtered_sleep(const std::vector<ChoiceOption>& sleep,
                                         const EventTag& taken) {
  std::vector<ChoiceOption> out;
  out.reserve(sleep.size());
  for (const ChoiceOption& s : sleep) {
    if (tags_independent(s.tag, taken)) out.push_back(s);
  }
  return out;
}

/// A decision a default continuation would have made on its own.
bool is_default_decision(const ChoiceRec& rec) {
  switch (rec.kind) {
    case ChoiceRec::Kind::kPick: return rec.chosen == 0;
    case ChoiceRec::Kind::kCoin:
    case ChoiceRec::Kind::kJitter: return rec.value == 0;
  }
  return true;
}

}  // namespace

Explorer::Explorer(RunFn run, ExplorerOptions options)
    : run_(std::move(run)), options_(options) {}

Explorer::Recorded Explorer::run_once(const std::vector<ChoiceRec>& prefix) {
  ++stats_.runs;
  Schedule forced;
  forced.choices = prefix;
  ReplayStrategy replay(forced);
  RecordingStrategy recording(replay);
  Recorded out;
  out.verdict = run_(recording);
  out.picks = recording.pick_options();
  out.schedule = recording.take_schedule();
  return out;
}

bool Explorer::budget_left() const {
  return options_.max_runs == 0 || stats_.runs < options_.max_runs;
}

void Explorer::count_leaf(const Recorded& r, bool truncated) {
  ++stats_.interleavings;
  if (truncated) {
    ++stats_.max_depth_hits;
    stats_.exhausted = false;
  }
  if (!r.verdict.ok) {
    ++stats_.failures;
    report_failure(r);
  }
}

void Explorer::report_failure(const Recorded& r) {
  if (!on_failure_) return;
  // Minimize: trailing decisions a default continuation makes anyway add
  // nothing to the replay prefix. Trim them, then prove the trimmed
  // schedule still reproduces the failure before publishing it.
  Schedule minimized = r.schedule;
  while (!minimized.choices.empty() &&
         is_default_decision(minimized.choices.back())) {
    minimized.choices.pop_back();
  }
  if (minimized.choices.size() < r.schedule.choices.size()) {
    const Recorded check = run_once(minimized.choices);
    if (check.verdict.ok || check.verdict.failure != r.verdict.failure) {
      minimized = r.schedule;  // trimming changed the outcome: keep it all
    }
  }
  on_failure_(minimized, r.verdict.failure);
}

ExplorerStats Explorer::explore() {
  stats_ = ExplorerStats{};
  frontier_ = 0;
  expand({}, {}, nullptr, 0, 0);
  return stats_;
}

void Explorer::expand(std::vector<ChoiceRec> prefix,
                      std::vector<ChoiceOption> sleep,
                      std::unique_ptr<Recorded> reuse, std::size_t depth,
                      std::uint64_t faults_used) {
  if (!budget_left()) {
    stats_.exhausted = false;
    return;
  }
  Recorded r = reuse != nullptr ? std::move(*reuse) : run_once(prefix);
  reuse.reset();

  // Walk the default continuation to the first branchable decision,
  // filtering the sleep set through every event executed on the way.
  std::size_t pick_i = 0;
  for (std::size_t k = 0; k < prefix.size(); ++k) {
    if (r.schedule.choices[k].kind == ChoiceRec::Kind::kPick) ++pick_i;
  }
  const bool depth_open =
      options_.max_depth == 0 || depth < options_.max_depth;
  bool truncated = false;
  std::size_t j = prefix.size();
  for (; j < r.schedule.choices.size(); ++j) {
    const ChoiceRec& rec = r.schedule.choices[j];
    if (rec.kind == ChoiceRec::Kind::kPick) {
      const std::size_t this_pick = pick_i++;
      if (r.picks[this_pick].size() > 1) {
        if (depth_open) break;  // branch node
        truncated = true;
      }
      if (options_.dpor && !sleep.empty()) {
        // Executing a sleeping event — even through a singleton pick —
        // means some earlier sibling's subtree already covers this path's
        // equivalence class. Cut it here, not only at branch nodes.
        if (is_asleep(sleep, rec.chosen_seq)) {
          ++stats_.redundant_paths;
          return;
        }
        sleep = filtered_sleep(sleep, rec.tag);
      }
      continue;
    }
    if (rec.kind == ChoiceRec::Kind::kCoin) {
      if (faults_used < options_.max_faults) {
        if (depth_open) break;  // can branch to "fault happens"
        truncated = true;
      }
      continue;
    }
    // kJitter
    if (options_.branch_jitter && rec.max_extra > 0) {
      if (depth_open) break;
      truncated = true;
    }
  }
  if (j >= r.schedule.choices.size()) {
    count_leaf(r, truncated);
    return;
  }

  // Branch node at decision index j.
  ++stats_.choice_points;
  const ChoiceRec rec = r.schedule.choices[j];
  std::vector<ChoiceRec> base(r.schedule.choices.begin(),
                              r.schedule.choices.begin() +
                                  static_cast<std::ptrdiff_t>(j));

  if (rec.kind == ChoiceRec::Kind::kPick) {
    const std::vector<ChoiceOption> opts = r.picks[pick_i - 1];
    // Godefroid sleep sets: the branch set is fixed at node entry; options
    // explored earlier go to sleep inside later siblings' subtrees.
    std::vector<bool> asleep(opts.size(), false);
    std::size_t live = 0;
    for (std::size_t i = 0; i < opts.size(); ++i) {
      asleep[i] = options_.dpor && is_asleep(sleep, opts[i].key.seq);
      if (!asleep[i]) ++live;
    }
    frontier_ += live;
    stats_.max_frontier = std::max(stats_.max_frontier, frontier_);
    std::unique_ptr<Recorded> ride;
    if (asleep.empty() || asleep[0]) {
      // The run in hand continues through a sleeping event: its whole
      // suffix is covered by an earlier sibling's subtree.
      ++stats_.redundant_paths;
    } else {
      ride = std::make_unique<Recorded>(std::move(r));
    }
    for (std::size_t i = 0; i < opts.size(); ++i) {
      if (asleep[i]) {
        ++stats_.sleep_pruned;
        continue;
      }
      --frontier_;
      std::vector<ChoiceRec> child = base;
      ChoiceRec forced = rec;
      forced.chosen = static_cast<std::uint32_t>(i);
      forced.chosen_seq = opts[i].key.seq;
      forced.tag = opts[i].tag;
      child.push_back(forced);
      std::vector<ChoiceOption> child_sleep;
      if (options_.dpor) child_sleep = filtered_sleep(sleep, opts[i].tag);
      expand(std::move(child), std::move(child_sleep),
             i == 0 ? std::move(ride) : nullptr, depth + 1, faults_used);
      if (options_.dpor) sleep.push_back(opts[i]);
    }
    return;
  }

  // Coin / jitter: two branches — the default (no fault / zero jitter,
  // riding the run in hand) and the adversarial value. The adversarial
  // branch wakes every sleeping event: a dropped or delayed packet changes
  // which events exist downstream, so commutativity arguments made on the
  // fault-free structure no longer apply.
  frontier_ += 2;
  stats_.max_frontier = std::max(stats_.max_frontier, frontier_);
  {
    --frontier_;
    std::vector<ChoiceRec> child = base;
    child.push_back(rec);  // default decision as recorded (value 0)
    expand(std::move(child), std::move(sleep),
           std::make_unique<Recorded>(std::move(r)), depth + 1, faults_used);
  }
  --frontier_;
  std::vector<ChoiceRec> child = base;
  ChoiceRec forced = rec;
  const bool is_coin = rec.kind == ChoiceRec::Kind::kCoin;
  forced.value =
      is_coin ? 1 : static_cast<std::uint64_t>(forced.max_extra);
  child.push_back(forced);
  expand(std::move(child), {}, nullptr, depth + 1,
         faults_used + (is_coin ? 1 : 0));
}

}  // namespace p4u::sim
