// Schedule: a serializable record of every scheduling decision in one run.
//
// A run under a ScheduleStrategy is a pure function of (inputs, decisions):
// which co-enabled event ran at each tie, how each fault coin landed, what
// jitter each reordered hop got. Capturing those decisions as data makes a
// run a first-class artifact — the explorer (sim/explorer.hpp) emits the
// Schedule of every counterexample it finds, and ReplayStrategy re-executes
// it step for step, validating along the way that the run being steered is
// actually the run that was recorded (same co-enabled sets, same event
// keys). Serialization is a single strict JSON document; anything malformed
// or internally inconsistent (out-of-range chosen index, jitter above its
// bound, time running backwards) is rejected at parse time, never at
// replay depth.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/schedule_strategy.hpp"
#include "sim/time.hpp"

namespace p4u::sim {

/// One recorded decision. Field use by kind:
///   kPick:   at, n_options, chosen, chosen_seq, tag (of the chosen event)
///   kCoin:   coin, tag.node, tag.flow, prob, value (0/1)
///   kJitter: coin, tag.node, tag.flow, max_extra, value (duration drawn)
struct ChoiceRec {
  enum class Kind : std::uint8_t { kPick = 0, kCoin, kJitter };
  Kind kind = Kind::kPick;
  Time at = 0;                  // decision instant (picks only)
  std::uint32_t n_options = 0;  // size of the co-enabled set
  std::uint32_t chosen = 0;     // index into the (at, seq)-sorted options
  std::uint64_t chosen_seq = 0; // seq word of the chosen event
  EventTag tag;
  CoinKind coin = CoinKind::kCtrlDrop;
  double prob = 0.0;
  Duration max_extra = 0;
  std::uint64_t value = 0;
};

/// A full decision record plus free-form metadata (config name, seed,
/// system — whatever makes the artifact self-describing).
struct Schedule {
  std::vector<std::pair<std::string, std::string>> meta;
  std::vector<ChoiceRec> choices;

  void add_meta(std::string key, std::string value) {
    meta.emplace_back(std::move(key), std::move(value));
  }

  /// Deterministic JSON document (one choice per line; meta in insertion
  /// order). parse(to_json()) round-trips exactly.
  [[nodiscard]] std::string to_json() const;

  /// Strict parser: throws std::runtime_error with a "Schedule:" message on
  /// malformed JSON, unknown kinds, chosen >= n_options, jitter value above
  /// max_extra, coin value not 0/1, or pick timestamps running backwards.
  static Schedule parse(const std::string& json);
};

/// Wraps another strategy and records every decision it makes. The recorded
/// Schedule replays to the identical run; pick_options() additionally keeps
/// the full co-enabled set of each pick, which is how the explorer learns
/// what alternative branches existed.
class RecordingStrategy final : public ScheduleStrategy {
 public:
  /// `inner` makes the actual decisions and must outlive this object.
  explicit RecordingStrategy(ScheduleStrategy& inner) : inner_(inner) {}

  std::size_t pick(const std::vector<ChoiceOption>& options) override;
  bool coin(const CoinPoint& cp, Rng& rng) override;
  Duration jitter(const CoinPoint& cp, Duration max_extra, Rng& rng) override;

  [[nodiscard]] const Schedule& schedule() const noexcept { return schedule_; }
  [[nodiscard]] Schedule take_schedule() { return std::move(schedule_); }

  /// Co-enabled sets, parallel to the kPick entries of schedule().choices
  /// in order of occurrence.
  [[nodiscard]] const std::vector<std::vector<ChoiceOption>>& pick_options()
      const noexcept {
    return pick_options_;
  }

 private:
  ScheduleStrategy& inner_;
  Schedule schedule_;
  std::vector<std::vector<ChoiceOption>> pick_options_;
};

/// Re-executes a recorded Schedule: each decision point consumes the next
/// record, which must agree with what the simulation presents (kind, option
/// count, chosen event key, coin identity) — a mismatch throws
/// std::runtime_error, because it means the schedule is being replayed
/// against a different run than it was recorded from. Past the end of the
/// schedule every decision resolves to the default (first event, no fault,
/// zero jitter), which is what lets the explorer force a prefix and lets
/// counterexample minimization trim trailing defaults.
class ReplayStrategy final : public ScheduleStrategy {
 public:
  /// `schedule` must outlive this object.
  explicit ReplayStrategy(const Schedule& schedule) : schedule_(&schedule) {}

  std::size_t pick(const std::vector<ChoiceOption>& options) override;
  bool coin(const CoinPoint& cp, Rng& rng) override;
  Duration jitter(const CoinPoint& cp, Duration max_extra, Rng& rng) override;

  /// Number of records consumed so far.
  [[nodiscard]] std::size_t consumed() const noexcept { return next_; }
  /// True once every record has been consumed.
  [[nodiscard]] bool exhausted() const noexcept {
    return next_ >= schedule_->choices.size();
  }

 private:
  [[nodiscard]] const ChoiceRec* next_rec(ChoiceRec::Kind want);
  [[noreturn]] static void mismatch(const std::string& what);

  const Schedule* schedule_;
  std::size_t next_ = 0;
};

}  // namespace p4u::sim
