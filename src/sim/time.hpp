// Virtual time for the discrete-event simulator.
//
// All simulated timestamps and durations are integer nanoseconds. Integer
// time keeps event ordering exact and runs reproducible across platforms,
// which the paper's measurements (CDFs over 30 seeded runs) depend on.
#pragma once

#include <cstdint>

namespace p4u::sim {

/// A point in virtual time, in nanoseconds since simulation start.
using Time = std::int64_t;

/// A span of virtual time, in nanoseconds.
using Duration = std::int64_t;

constexpr Duration kNanosecond = 1;
constexpr Duration kMicrosecond = 1'000;
constexpr Duration kMillisecond = 1'000'000;
constexpr Duration kSecond = 1'000'000'000;

/// Largest representable time; used as "run forever" bound.
constexpr Time kTimeInfinity = INT64_MAX;

constexpr Duration nanoseconds(std::int64_t n) noexcept { return n; }
constexpr Duration microseconds(std::int64_t us) noexcept {
  return us * kMicrosecond;
}
constexpr Duration milliseconds(std::int64_t ms) noexcept {
  return ms * kMillisecond;
}
constexpr Duration seconds(std::int64_t s) noexcept { return s * kSecond; }

/// Converts a duration expressed in (possibly fractional) milliseconds.
constexpr Duration milliseconds_f(double ms) noexcept {
  return static_cast<Duration>(ms * static_cast<double>(kMillisecond));
}

/// Converts a virtual time/duration to fractional milliseconds for reporting.
constexpr double to_ms(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Converts a virtual time/duration to fractional seconds for reporting.
constexpr double to_sec(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace p4u::sim
