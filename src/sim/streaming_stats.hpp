// StreamingStats: fixed-memory summary statistics for million-observation
// series (ROADMAP: million-flow scale campaign).
//
// sim::Samples stores every observation so percentile queries are exact —
// right for the figure campaigns (30 runs per spec), wrong for a scale run
// that observes 10^6 per-flow completion times: there RSS would grow with
// the observation count. StreamingStats keeps count/mean/M2 (Welford) plus
// exact min/max and a fixed set of P² quantile estimators (Jain &
// Chlamtac, CACM '85: five markers per probe, O(1) memory and update), so
// the whole accumulator is a few hundred bytes however many observations
// stream through.
//
// Rule of thumb (DESIGN.md §10): Samples where a bench pins interpolated
// percentiles byte-for-byte or needs the empirical CDF; StreamingStats
// where only the summary leaves the run. Everything here is deterministic
// — same observation sequence, same estimates.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace p4u::sim {

/// One P² quantile estimator for probability `p` in (0, 1). Exact while
/// fewer than five observations arrived; a five-marker parabolic estimate
/// afterwards.
class P2Quantile {
 public:
  explicit P2Quantile(double p);

  void add(double x);
  [[nodiscard]] double probability() const { return p_; }
  /// Current estimate; throws std::logic_error before any observation.
  [[nodiscard]] double value() const;

 private:
  [[nodiscard]] double parabolic(int i, double s) const;
  [[nodiscard]] double linear(int i, int s) const;

  double p_;
  int count_ = 0;
  double q_[5] = {0, 0, 0, 0, 0};   // marker heights
  double n_[5] = {1, 2, 3, 4, 5};   // marker positions (1-based)
  double np_[5] = {0, 0, 0, 0, 0};  // desired positions
  double dn_[5] = {0, 0, 0, 0, 0};  // desired-position increments
};

class StreamingStats {
 public:
  /// `quantiles` are the tracked probabilities as percentages (a P²
  /// estimator each); defaults to p50/p95/p99.
  explicit StreamingStats(std::vector<double> quantiles = {50.0, 95.0, 99.0});

  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;  // sample stddev (n-1), like Samples

  /// Estimate for one of the tracked percentages (p in [0, 100]); throws
  /// std::invalid_argument for an untracked probe — the fixed-memory
  /// accumulator only knows the probes it was constructed with.
  [[nodiscard]] double quantile(double p) const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<P2Quantile> quantiles_;
};

/// "mean=… p50=… p95=… min=… max=… n=…" — the streaming twin of
/// summary_line(const Samples&).
std::string summary_line(const StreamingStats& s);

}  // namespace p4u::sim
