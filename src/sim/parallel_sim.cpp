#include "sim/parallel_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace p4u::sim {

namespace {

/// now + delta without wrapping past the end of time.
Time saturating_add(Time t, Duration d) noexcept {
  return d > kTimeInfinity - t ? kTimeInfinity : t + d;
}

/// Published in next_time_ by a shard whose worker caught an exception.
/// Every phase-2 decision must be a pure function of values published
/// before the phase-1 barrier — a live "did anyone error?" flag is not
/// (a fast shard can set it during the same round's phase 3, after a slow
/// shard already read it false, and the two then disagree on whether the
/// round continues — a barrier deadlock). The sentinel rides the same
/// publication channel as the next-event times, so all workers see the
/// same value and halt in the same round.
constexpr Time kHaltSentinel = -1;

}  // namespace

void ShardedSimulator::SpinBarrier::arrive_and_wait() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    // Last arrival: reset for the next generation, then release everyone.
    // The release store publishes every pre-barrier write of every party
    // (their arrivals form a release sequence on count_).
    count_.store(0, std::memory_order_relaxed);
    generation_.store(gen + 1, std::memory_order_release);
    return;
  }
  int spins = 0;
  while (generation_.load(std::memory_order_acquire) == gen) {
    if (++spins > 4096) {
      std::this_thread::yield();
    }
  }
}

ShardedSimulator::ShardedSimulator(int shards, std::size_t origin_count,
                                   Duration lookahead)
    : lookahead_(lookahead), barrier_(shards) {
  if (shards < 1) {
    throw std::invalid_argument("ShardedSimulator: shards must be >= 1");
  }
  if (shards > 1 && lookahead <= 0) {
    throw std::invalid_argument(
        "ShardedSimulator: conservative lookahead must be positive — a "
        "zero-latency cross-shard channel admits no safe window");
  }
  const auto k = static_cast<std::size_t>(shards);
  sims_.reserve(k);
  domains_.reserve(k);
  for (std::size_t s = 0; s < k; ++s) {
    domains_.push_back(std::make_unique<OrderDomain>(origin_count));
    sims_.push_back(std::make_unique<Simulator>());
    sims_.back()->set_order_domain(domains_.back().get());
  }
  mail_.resize(k);
  for (auto& row : mail_) row.resize(k);
  next_time_.assign(k, kTimeInfinity);
  window_hi_.assign(k, 0);
  ran_.assign(k, 0);
  errors_.assign(k, nullptr);
}

void ShardedSimulator::post_cross(int exec_shard, int target_shard, Time at,
                                  std::uint64_t word, EventTag tag,
                                  Handler&& fn) {
  // Conservative-lookahead contract: a handler running inside window
  // [T, hi) may only reach another shard at >= hi. Anything closer would
  // have to be inserted into a heap another thread is popping.
  if (at < window_hi_[idx(exec_shard)]) {
    throw std::logic_error(
        "ShardedSimulator: cross-shard event scheduled inside the current "
        "window — lookahead (min cross-shard latency) is wrong");
  }
  mail_[idx(exec_shard)][idx(target_shard)].buf.push_back(
      CrossEvent{at, word, tag, std::move(fn)});
}

void ShardedSimulator::reserve(std::size_t n) {
  const auto k = static_cast<std::size_t>(shards());
  const std::size_t per_shard = n / k + 1;
  for (auto& sim : sims_) sim->reserve(per_shard);
}

std::uint64_t ShardedSimulator::executed() const noexcept {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) total += sim->executed();
  return total;
}

std::size_t ShardedSimulator::run(Time until, const Checkpoint& checkpoint,
                                  Duration cadence) {
  if (shards() == 1) return run_single(until, checkpoint, cadence);
  return run_windows(until, checkpoint, cadence);
}

/// Single-shard fast path: same keyed order, no threads, no windows. The
/// only structure kept is the checkpoint split, so a K = 1 run observes
/// monitor state at exactly the virtual times every K > 1 run does.
std::size_t ShardedSimulator::run_single(Time until,
                                         const Checkpoint& checkpoint,
                                         Duration cadence) {
  Simulator& sim = *sims_.front();
  Time next_check = cadence > 0 ? cadence : kTimeInfinity;
  std::size_t n = 0;
  for (;;) {
    const Time t = sim.next_at();
    if (t == kTimeInfinity || t > until) break;
    if (t >= next_check) {
      if (checkpoint) checkpoint();
      next_check = saturating_add(next_check, cadence);
      continue;
    }
    n += sim.run(std::min(next_check - 1, until));
  }
  return n;
}

std::size_t ShardedSimulator::run_windows(Time until,
                                          const Checkpoint& checkpoint,
                                          Duration cadence) {
  const int k = shards();
  std::fill(ran_.begin(), ran_.end(), 0);
  std::fill(window_hi_.begin(), window_hi_.end(), Time{0});
  std::fill(errors_.begin(), errors_.end(), nullptr);
  checkpoint_error_.store(false, std::memory_order_relaxed);
  running_ = true;

  // One pinned worker per shard for the whole run; the calling thread is
  // shard 0's worker (and the one that runs checkpoints).
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(k - 1));
  for (int s = 1; s < k; ++s) {
    pool.emplace_back([this, s, until, &checkpoint, cadence] {
      worker_loop(s, until, checkpoint, cadence);
    });
  }
  worker_loop(0, until, checkpoint, cadence);
  for (std::thread& t : pool) t.join();
  running_ = false;

  for (const std::exception_ptr& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
  std::size_t total = 0;
  for (const std::size_t n : ran_) total += n;
  return total;
}

void ShardedSimulator::worker_loop(int s, Time until,
                                   const Checkpoint& checkpoint,
                                   Duration cadence) {
  const auto me = idx(s);
  const auto k = static_cast<std::size_t>(shards());
  Simulator& sim = *sims_[me];
  Time next_check = cadence > 0 ? cadence : kTimeInfinity;
  bool dead = false;  // after an error: keep the barrier protocol, do no work

  for (;;) {
    // Phase 1 — drain inboxes (the senders are quiescent: their writes
    // were published by the end-of-window barrier) and publish the local
    // next-event time.
    if (!dead) {
      try {
        for (std::size_t from = 0; from < k; ++from) {
          std::vector<CrossEvent>& inbox = mail_[from][me].buf;
          for (CrossEvent& ev : inbox) {
            sim.schedule_keyed(ev.at, ev.word, ev.tag, std::move(ev.fn));
          }
          inbox.clear();
        }
        next_time_[me] = sim.next_at();
      } catch (...) {
        errors_[me] = std::current_exception();
        dead = true;
      }
    }
    if (dead) next_time_[me] = kHaltSentinel;
    barrier_.arrive_and_wait();

    // Phase 2 — every worker derives the same decision from the same
    // barrier-published inputs (no live flags: see kHaltSentinel).
    Time tmin = kTimeInfinity;
    bool halt = false;
    for (std::size_t i = 0; i < k; ++i) {
      halt |= next_time_[i] == kHaltSentinel;
      tmin = std::min(tmin, next_time_[i]);
    }
    if (halt || tmin == kTimeInfinity || tmin > until) return;

    if (tmin >= next_check) {
      // Checkpoint boundary: shard 0's worker (the caller) runs the hook
      // single-threaded while the rest hold at the barrier.
      if (s == 0 && checkpoint) {
        try {
          checkpoint();
        } catch (...) {
          errors_[me] = std::current_exception();
          checkpoint_error_.store(true, std::memory_order_release);
        }
      }
      barrier_.arrive_and_wait();
      if (checkpoint_error_.load(std::memory_order_acquire)) return;
      next_check = saturating_add(next_check, cadence);
      continue;
    }

    // Phase 3 — execute the window [tmin, hi) in parallel. hi never
    // crosses a pending checkpoint, and cross-shard posts land at >= hi by
    // the lookahead argument (post_cross enforces it).
    const Time hi = std::min(saturating_add(tmin, lookahead_), next_check);
    window_hi_[me] = hi;
    if (!dead) {
      try {
        ran_[me] += sim.run(std::min(hi - 1, until));
      } catch (...) {
        // No shared store here: the next round's phase 1 publishes the
        // halt sentinel behind the barrier, where every worker reads it
        // consistently.
        errors_[me] = std::current_exception();
        dead = true;
      }
    }
    barrier_.arrive_and_wait();
  }
}

}  // namespace p4u::sim
