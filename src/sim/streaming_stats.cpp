#include "sim/streaming_stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace p4u::sim {

P2Quantile::P2Quantile(double p) : p_(p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("P2Quantile: p must be in (0, 1)");
  }
  np_[0] = 1.0;
  np_[1] = 1.0 + 2.0 * p;
  np_[2] = 1.0 + 4.0 * p;
  np_[3] = 3.0 + 2.0 * p;
  np_[4] = 5.0;
  dn_[0] = 0.0;
  dn_[1] = p / 2.0;
  dn_[2] = p;
  dn_[3] = (1.0 + p) / 2.0;
  dn_[4] = 1.0;
}

double P2Quantile::parabolic(int i, double s) const {
  return q_[i] + s / (n_[i + 1] - n_[i - 1]) *
                     ((n_[i] - n_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                          (n_[i + 1] - n_[i]) +
                      (n_[i + 1] - n_[i] - s) * (q_[i] - q_[i - 1]) /
                          (n_[i] - n_[i - 1]));
}

double P2Quantile::linear(int i, int s) const {
  return q_[i] + s * (q_[i + s] - q_[i]) / (n_[i + s] - n_[i]);
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    q_[count_] = x;
    ++count_;
    if (count_ == 5) std::sort(q_, q_ + 5);
    return;
  }
  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) n_[i] += 1.0;
  for (int i = 0; i < 5; ++i) np_[i] += dn_[i];
  for (int i = 1; i <= 3; ++i) {
    const double d = np_[i] - n_[i];
    if ((d >= 1.0 && n_[i + 1] - n_[i] > 1.0) ||
        (d <= -1.0 && n_[i - 1] - n_[i] < -1.0)) {
      const int s = d >= 0.0 ? 1 : -1;
      const double candidate = parabolic(i, s);
      q_[i] = q_[i - 1] < candidate && candidate < q_[i + 1]
                  ? candidate
                  : linear(i, s);
      n_[i] += s;
    }
  }
  ++count_;
}

double P2Quantile::value() const {
  if (count_ == 0) throw std::logic_error("P2Quantile::value on empty set");
  if (count_ >= 5) return q_[2];
  // Exact small-sample estimate: interpolate the sorted prefix the same way
  // Samples::percentile does.
  double sorted[5];
  std::copy(q_, q_ + count_, sorted);
  std::sort(sorted, sorted + count_);
  if (count_ == 1) return sorted[0];
  const double idx = p_ * static_cast<double>(count_ - 1);
  const auto lo = static_cast<int>(idx);
  const int hi = std::min(lo + 1, count_ - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

StreamingStats::StreamingStats(std::vector<double> quantiles) {
  quantiles_.reserve(quantiles.size());
  for (const double p : quantiles) {
    quantiles_.emplace_back(p / 100.0);
  }
}

void StreamingStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  // Welford: numerically stable single-pass mean and M2.
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  for (P2Quantile& q : quantiles_) q.add(x);
}

double StreamingStats::min() const {
  if (count_ == 0) throw std::logic_error("StreamingStats::min on empty set");
  return min_;
}

double StreamingStats::max() const {
  if (count_ == 0) throw std::logic_error("StreamingStats::max on empty set");
  return max_;
}

double StreamingStats::mean() const {
  if (count_ == 0) throw std::logic_error("StreamingStats::mean on empty set");
  return mean_;
}

double StreamingStats::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

double StreamingStats::quantile(double p) const {
  for (const P2Quantile& q : quantiles_) {
    if (std::abs(q.probability() * 100.0 - p) < 1e-9) return q.value();
  }
  throw std::invalid_argument("StreamingStats::quantile: untracked probe");
}

std::string summary_line(const StreamingStats& s) {
  std::ostringstream os;
  if (s.empty()) return "n=0";
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "mean=" << s.mean() << " p50=" << s.quantile(50.0)
     << " p95=" << s.quantile(95.0) << " min=" << s.min()
     << " max=" << s.max() << " n=" << s.count();
  return os.str();
}

}  // namespace p4u::sim
