// Deterministic discrete-event simulator core.
//
// Substitutes the paper's Mininet real-time emulation: every latency the
// paper composes (link propagation, switch service time, rule-install delay,
// controller round trips) becomes a scheduled event. Ties are broken by
// insertion order, so a run is a pure function of its inputs and RNG seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace p4u::sim {

/// Discrete-event scheduler with integer-nanosecond virtual time.
///
/// Usage:
///   Simulator sim;
///   sim.schedule_in(milliseconds(5), [&]{ ... });
///   sim.run();
class Simulator {
 public:
  using Handler = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` to run `delay` after the current time. Negative delays
  /// are clamped to zero (run "now", after already-queued same-time events).
  void schedule_in(Duration delay, Handler fn);

  /// Schedules `fn` at absolute time `at` (clamped to `now()` if in the past).
  void schedule_at(Time at, Handler fn);

  /// Runs events until the queue drains or virtual time exceeds `until`.
  /// Returns the number of events executed.
  std::size_t run(Time until = kTimeInfinity);

  /// Executes at most `max_events` events; used by tests to single-step.
  std::size_t run_steps(std::size_t max_events);

  /// True if no events remain.
  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Total number of events executed since construction.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Stops the current `run()` after the in-flight handler returns.
  void stop() noexcept { stopped_ = true; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;  // insertion order; breaks ties deterministically
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_and_run(Time until);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
};

}  // namespace p4u::sim
