// Deterministic discrete-event simulator core.
//
// Substitutes the paper's Mininet real-time emulation: every latency the
// paper composes (link propagation, switch service time, rule-install delay,
// controller round trips) becomes a scheduled event. Ties are broken by
// insertion order, so a run is a pure function of its inputs and RNG seed.
//
// Hot-path layout (the dispatch rate bounds how many switches, flows, and
// seeds a campaign can sweep):
//   - handlers are sim::InlineFn (fixed inline storage — scheduling never
//     heap-allocates for the capture sizes the fabric produces),
//   - handlers live in a slab pool with a free list (slot addresses are
//     stable; slots recycle without touching the allocator),
//   - the ready queue is a 4-ary heap of 16-byte {at, seq|slot} entries:
//     the ordering key travels with the entry, so sift comparisons read a
//     contiguous array and never dereference into the pool, and the
//     shallower tree halves the comparison depth of a binary heap.
// Ordering is by (at, seq) via sim::EventOrder — seq is unique, so the
// comparison is a strict total order and the heap arity cannot change the
// pop sequence.
//
// Event ordering is pluggable: install a ScheduleStrategy and the pop path
// presents every *co-enabled* event (same timestamp as the minimum) to
// strategy->pick() instead of hardcoding the seq tie-break. With no
// strategy installed (the default) the historical fast path runs unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/event_order.hpp"
#include "sim/inline_fn.hpp"
#include "sim/schedule_strategy.hpp"
#include "sim/time.hpp"

namespace p4u::sim {

/// Shard-count-independent event-order key source (the sharded engine's
/// replacement for the global insertion sequence).
///
/// The legacy tie-break — a per-simulator counter incremented at schedule
/// time — encodes *global insertion order*, which depends on how shard
/// execution interleaves and therefore on K. This domain keys each event by
/// (origin node, per-origin counter) instead:
///
///   word = (origin + 1) << 32 | counter        (44 bits, < Simulator::kMaxSeq)
///
/// where `origin` is the tag.node of the event whose handler performed the
/// scheduling (-1 for the controller/root context). A node's handler
/// execution sequence is K-independent under conservative windows, and
/// scheduling calls within a handler happen in program order, so the
/// counter values — and hence the total (at, word) order — are a pure
/// function of the simulated system, not of the shard count.
///
/// Ownership discipline: each origin's counter cell is written only by the
/// shard that owns that origin (the root/controller cell belongs to shard
/// 0), so domains need no atomics; the window barriers order everything.
class OrderDomain {
 public:
  static constexpr std::uint32_t kCounterBits = 32;
  /// Max origins (biased node ids) a domain can key: 2^12 - 1 nodes plus
  /// the root. Together with the 32-bit counter this fills exactly the 44
  /// key bits Simulator's heap word affords above the slot bits.
  static constexpr std::size_t kMaxOrigins = 1u << 12;

  /// `origin_count` = node count + 1 (index 0 is the root/controller -1).
  explicit OrderDomain(std::size_t origin_count)
      : counters_(origin_count, 0) {
    if (origin_count > kMaxOrigins) {
      throw std::length_error(
          "OrderDomain: topology exceeds 2^12 - 1 keyable origins");
    }
  }

  /// Installs the origin whose handler is about to run. Called by the pop
  /// path with the popped event's tag.node, and by the coordinator (-1)
  /// around pre-run setup.
  void set_current_origin(std::int32_t node) noexcept { current_ = node; }
  [[nodiscard]] std::int32_t current_origin() const noexcept {
    return current_;
  }

  /// Next key word for an event scheduled from the current origin.
  [[nodiscard]] std::uint64_t next_word() {
    const auto cell = static_cast<std::size_t>(current_ + 1);
    std::uint32_t& c = counters_.at(cell);
    if (c == UINT32_MAX) {
      throw std::length_error(
          "OrderDomain: per-origin event counter exhausted");
    }
    return (static_cast<std::uint64_t>(cell) << kCounterBits) |
           static_cast<std::uint64_t>(c++);
  }

 private:
  std::vector<std::uint32_t> counters_;  // per biased-origin schedule count
  std::int32_t current_ = -1;            // origin of the running handler
};

/// Discrete-event scheduler with integer-nanosecond virtual time.
///
/// Usage:
///   Simulator sim;
///   sim.schedule_in(milliseconds(5), [&]{ ... });
///   sim.run();
class Simulator {
 public:
  /// Inline capacity covers the largest fabric handler: a capture of
  /// {this, node, port, Packet} (152 bytes today) plus slack for harness
  /// lambdas. A capture that outgrows it is a compile error in InlineFn,
  /// not a heap fallback. 184 is deliberate: with the ops pointer it makes
  /// sizeof(Handler) == 192, so an alignas(64) pool slot is exactly three
  /// cache lines and every handler starts on a line boundary.
  using Handler = InlineFn<184>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `f` to run `delay` after the current time. Negative delays
  /// are clamped to zero (run "now", after already-queued same-time events).
  /// The callable is constructed directly into its pool slot: the capture
  /// is copied exactly once, from the caller's frame.
  template <typename F>
  void schedule_in(Duration delay, F&& f) {
    schedule_in(delay, EventTag{}, std::forward<F>(f));
  }

  /// Tagged variant: the tag travels with the event and is shown to the
  /// installed ScheduleStrategy when the event is co-enabled with others.
  template <typename F>
  void schedule_in(Duration delay, EventTag tag, F&& f) {
    if (delay < 0) delay = 0;
    // Saturate: a delay near kTimeInfinity must park the event at the end
    // of time, not wrap `now_ + delay` into the past.
    const Time at =
        delay > kTimeInfinity - now_ ? kTimeInfinity : now_ + delay;
    schedule_at(at, tag, std::forward<F>(f));
  }

  /// Schedules `f` at absolute time `at` (clamped to `now()` if in the past).
  template <typename F>
  void schedule_at(Time at, F&& f) {
    schedule_at(at, EventTag{}, std::forward<F>(f));
  }

  /// Tagged variant of schedule_at.
  template <typename F>
  void schedule_at(Time at, EventTag tag, F&& f) {
    if (at < now_) at = now_;
    const std::uint32_t idx = allocate_slot();
    if constexpr (std::is_same_v<std::decay_t<F>, Handler>) {
      slot(idx) = std::forward<F>(f);  // pre-built handler: one relocation
    } else {
      slot(idx).emplace(std::forward<F>(f));
    }
    tags_[idx] = tag;
    std::uint64_t word;
    if (order_ == nullptr) [[likely]] {
      if (next_seq_ == kMaxSeq) raise_seq_overflow();
      word = next_seq_++;
    } else {
      word = order_->next_word();
    }
    heap_push(HeapEntry{at, (word << kSlotBits) | idx});
  }

  /// Inserts an event whose order key was already drawn (from the sending
  /// shard's OrderDomain): the cross-shard mailbox drain path. The word
  /// must be unique within this simulator's lifetime and < 2^44; passing a
  /// word from anything but an OrderDomain breaks the total order.
  void schedule_keyed(Time at, std::uint64_t key_word, EventTag tag,
                      Handler&& fn) {
    if (at < now_) at = now_;
    const std::uint32_t idx = allocate_slot();
    slot(idx) = std::move(fn);
    tags_[idx] = tag;
    heap_push(HeapEntry{at, (key_word << kSlotBits) | idx});
  }

  /// Installs the shard-count-independent key source (nullptr restores the
  /// insertion-sequence tie-break). Must be installed before any event is
  /// scheduled: mixing sequence words and domain words in one heap would
  /// interleave two unrelated key spaces.
  void set_order_domain(OrderDomain* d) noexcept { order_ = d; }
  [[nodiscard]] OrderDomain* order_domain() const noexcept { return order_; }

  /// Installs the event-ordering strategy (nullptr restores the historical
  /// fast path). The strategy must outlive the simulator or be cleared
  /// before it dies; it is consulted only while `run()` is executing.
  void set_strategy(ScheduleStrategy* s) noexcept { strategy_ = s; }

  /// The installed strategy, or nullptr. Components with probabilistic
  /// decisions (fabric drops, jitter) route their coins through this so an
  /// explorer can branch on them.
  [[nodiscard]] ScheduleStrategy* strategy() const noexcept {
    return strategy_;
  }

  /// Pre-sizes the heap and the handler slab for about `n` concurrently
  /// pending events, so a run of known scale never regrows mid-flight.
  void reserve(std::size_t n);

  /// Runs events until the queue drains or virtual time exceeds `until`.
  /// Returns the number of events executed.
  std::size_t run(Time until = kTimeInfinity);

  /// Executes at most `max_events` events; used by tests to single-step.
  std::size_t run_steps(std::size_t max_events);

  /// True if no events remain.
  [[nodiscard]] bool idle() const noexcept { return heap_.empty(); }

  /// Timestamp of the earliest pending event; kTimeInfinity when idle.
  /// The sharded engine's window scheduler advances to this instead of
  /// stepping fixed-width windows through empty virtual time.
  [[nodiscard]] Time next_at() const noexcept {
    return heap_.empty() ? kTimeInfinity : heap_.front().at;
  }

  /// Number of pending events.
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// High-water mark of the pending-event count (the sim.pending_peak
  /// gauge): how deep the ready queue ever got.
  [[nodiscard]] std::size_t pending_peak() const noexcept {
    return pending_peak_;
  }

  /// Total number of events executed since construction.
  [[nodiscard]] std::uint64_t executed() const noexcept { return executed_; }

  /// Stops the current `run()` after the in-flight handler returns.
  void stop() noexcept { stopped_ = true; }

 private:
  /// Slots are addressed with kSlotBits bits so a heap entry packs the slot
  /// next to the tie-break sequence number in one word. The caps this
  /// implies are unreachable in practice and checked, not assumed: 2^20
  /// concurrently pending events (~200 MB of handler slabs) and 2^44 total
  /// events per simulator (weeks of dispatch at benchmarked rates).
  static constexpr std::uint32_t kSlotBits = 20;
  static constexpr std::uint32_t kMaxSlots = 1u << kSlotBits;
  static constexpr std::uint64_t kMaxSeq = 1ull << (64 - kSlotBits);

  /// Heap element: 16 bytes — the full ordering key with the pool slot
  /// packed into the low bits of the word that carries the sequence
  /// number. `seq` is unique, so comparing `seq_idx` words compares `seq`
  /// and the slot bits can never influence the order (EventOrder's
  /// seq-monotone-word contract). Sift operations move these, and only
  /// these; the (large) handler stays put in its slab until it runs.
  struct HeapEntry {
    Time at;
    std::uint64_t seq_idx;  // (seq << kSlotBits) | slot
    [[nodiscard]] std::uint32_t idx() const noexcept {
      return static_cast<std::uint32_t>(seq_idx) & (kMaxSlots - 1);
    }
  };

  // Slab geometry: slots are addressed as (index >> kSlabShift) into the
  // slab list, (index & kSlabMask) within a slab. Slabs never move or
  // shrink, so handler addresses are stable across pool growth.
  static constexpr std::uint32_t kSlabShift = 10;
  static constexpr std::uint32_t kSlabSize = 1u << kSlabShift;
  static constexpr std::uint32_t kSlabMask = kSlabSize - 1;

  /// Pool slot: line-aligned so the pop-path prefetch of three cache lines
  /// covers any handler completely, and no capture straddles an extra line.
  /// Tags live in a parallel array, not here — a tag in the slot would
  /// spill the handler onto a fourth cache line.
  struct alignas(64) Slot {
    Handler fn;
  };
  static_assert(sizeof(Slot) == 192, "slot must stay exactly 3 cache lines");

  [[nodiscard]] Handler& slot(std::uint32_t idx) noexcept {
    return slabs_[idx >> kSlabShift][idx & kSlabMask].fn;
  }
  /// Earlier-than: the shared strict (at, seq) order. seq_idx is
  /// seq-monotone (slot bits sit below every seq bit), so comparing the
  /// packed words compares seq.
  [[nodiscard]] static bool before(const HeapEntry& a,
                                   const HeapEntry& b) noexcept {
    return EventOrder::before(a.at, a.seq_idx, b.at, b.seq_idx);
  }

  [[nodiscard]] std::uint32_t allocate_slot();
  [[noreturn]] static void raise_seq_overflow();
  void heap_push(HeapEntry e);
  void heap_remove_min();
  /// Strategy pop path: removes every event at the minimum timestamp (the
  /// co-enabled set), lets the strategy pick one, re-pushes the rest with
  /// their keys intact, and returns the winner (already removed).
  [[nodiscard]] HeapEntry strategy_select();
  bool pop_and_run(Time until);

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::vector<EventTag> tags_;        // per-slot tag, parallel to slabs_
  std::vector<std::uint32_t> free_;   // recycled pool slots
  std::uint32_t next_fresh_ = 0;      // first never-used slot
  std::vector<HeapEntry> heap_;       // 4-ary min-heap keyed by (at, seq)
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t pending_peak_ = 0;
  bool stopped_ = false;
  ScheduleStrategy* strategy_ = nullptr;
  OrderDomain* order_ = nullptr;
  // Scratch for strategy_select(); members so the strategy pop path does
  // not allocate per event once warm.
  std::vector<HeapEntry> co_enabled_;
  std::vector<ChoiceOption> options_;
};

}  // namespace p4u::sim
