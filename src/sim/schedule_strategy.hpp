// ScheduleStrategy: the pluggable event-ordering decision.
//
// The simulator's heap keeps events in (at, seq) order (sim/event_order.hpp)
// — but *which* of several same-timestamp events runs first, and how a
// probabilistic fault coin resolves, are scheduling decisions, not physics.
// Historically both were fused into the core: the heap pop hardcoded the
// seq tie-break and the fabric drew drop/reorder coins from a private RNG
// stream. This interface lifts both out:
//
//   - pick():  given the co-enabled set (every pending event at the minimum
//              timestamp, presented in (at, seq) order), choose which runs
//              next. The default SeededStrategy picks index 0 — exactly the
//              historical seq tie-break, proven byte-identical by the
//              golden-trace regression.
//   - coin():  resolve a probabilistic fault point (drop a packet?). The
//              SeededStrategy draws from the caller's seeded RNG exactly as
//              the fabric used to; an explorer enumerates both branches.
//   - jitter(): resolve a reorder-jitter delay in [0, max]. Seeded draws
//              uniformly; an explorer branches over {0, max}.
//
// Events carry an EventTag so strategies can reason about *independence*:
// two same-time events on different switches touching different flows
// commute, which is what lets the DPOR explorer (sim/explorer.hpp) prune
// redundant interleavings. Untagged events (kInternal) are conservatively
// dependent on everything.
//
// Strategies are per-run and never shared across threads; the campaign
// runner builds one per seeded job.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_order.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace p4u::sim {

/// What kind of work an event performs; used by the independence relation
/// and for schedule-artifact readability.
enum class EventClass : std::uint8_t {
  kInternal = 0,  // untagged — conservatively dependent on everything
  kDelivery,      // a packet arriving at a switch front panel
  kService,       // a switch pipeline slot finishing
  kInstall,       // a forwarding-table write becoming active
  kControl,       // controller channel work (single controller thread)
  kFault,         // a scheduled FaultPlan event
  kTimer,         // a protocol timer (watchdog, recovery backoff)
  kScenario,      // harness-driven stimulus (issue update, start traffic)
};

const char* to_string(EventClass c);

/// Scheduling metadata attached to an event. `node` is the switch whose
/// state the handler touches (-1 = global/controller scope); `flow` the
/// flow it is scoped to (0 = none).
struct EventTag {
  std::int32_t node = -1;
  EventClass cls = EventClass::kInternal;
  std::uint64_t flow = 0;
};

/// True when two same-time events are *independent*: running them in either
/// order reaches the same state, so an explorer need not try both orders.
/// Conservative by construction:
///   - anything kInternal / kFault / kScenario is dependent on everything,
///   - two kControl events share the controller's single service queue,
///   - same switch => dependent (pipeline/table state), and node -1 is
///     "every switch",
///   - same flow (nonzero) => dependent even across switches (monitor
///     walks, per-flow rule state along the path).
[[nodiscard]] bool tags_independent(const EventTag& a, const EventTag& b);

/// One co-enabled event as presented to pick(): its ordering key plus tag.
/// The vector handed to pick() is sorted by EventOrder and index 0 is the
/// event the historical core would run.
struct ChoiceOption {
  EventKey key;
  EventTag tag;
};

/// Probabilistic fault decision kinds (fabric, faults::FaultModel).
enum class CoinKind : std::uint8_t {
  kCtrlDrop = 0,  // drop a control message on a hop
  kDataDrop,      // drop a data packet on a hop
  kReorder,       // extra reorder jitter on a hop
};

const char* to_string(CoinKind k);

/// Everything a strategy may condition a coin decision on.
struct CoinPoint {
  CoinKind kind = CoinKind::kCtrlDrop;
  std::int32_t node = -1;   // transmitting switch
  std::uint64_t flow = 0;   // flow of the packet, 0 if none
  double prob = 0.0;        // the model's probability for this coin
};

class ScheduleStrategy {
 public:
  ScheduleStrategy() = default;
  ScheduleStrategy(const ScheduleStrategy&) = delete;
  ScheduleStrategy& operator=(const ScheduleStrategy&) = delete;
  virtual ~ScheduleStrategy() = default;

  /// Picks which co-enabled event runs next; returns an index into
  /// `options` (never empty, sorted by EventOrder). Out-of-range returns
  /// are a logic error in the strategy and throw in the simulator.
  virtual std::size_t pick(const std::vector<ChoiceOption>& options) = 0;

  /// Resolves one fault coin. `rng` is the caller's seeded fault-only
  /// stream; a strategy that does not draw from it must leave it untouched
  /// so replayed runs stay aligned. Called only when `cp.prob > 0`.
  virtual bool coin(const CoinPoint& cp, Rng& rng) = 0;

  /// Resolves a reorder-jitter delay in [0, max_extra]; called only when
  /// the model's jitter is positive.
  virtual Duration jitter(const CoinPoint& cp, Duration max_extra,
                          Rng& rng) = 0;
};

/// The historical core's behavior behind the interface: pick the (at, seq)
/// minimum, draw coins and jitter from the seeded stream. Installing this
/// strategy is byte-identical to installing none (the golden-trace
/// regression pins it).
class SeededStrategy final : public ScheduleStrategy {
 public:
  std::size_t pick(const std::vector<ChoiceOption>& options) override;
  bool coin(const CoinPoint& cp, Rng& rng) override;
  Duration jitter(const CoinPoint& cp, Duration max_extra, Rng& rng) override;
};

}  // namespace p4u::sim
