// Deterministic random number generation.
//
// The paper samples node-straggler delays from exp(100 ms) (NumPy) and
// fat-tree control latencies from a measured normal distribution. We need
// the same distributions, but bit-reproducible across platforms, so we ship
// our own xoshiro256++ engine and derive every per-run stream from a master
// seed via splitmix64.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace p4u::sim {

/// splitmix64 step; used for seeding and cheap hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return UINT64_MAX; }

  result_type operator()() noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponential with the given mean (NOT rate), e.g. exp(100 ms).
  double exponential(double mean);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal(double mean, double stddev);

  /// Normal truncated below at `lo` (resample; `lo` must be likely enough).
  double truncated_normal(double mean, double stddev, double lo);

  /// Forks an independent stream; children of distinct forks never collide.
  Rng fork();

  /// Shuffles a vector in place (Fisher–Yates).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// Exponential duration with the given mean in milliseconds.
Duration exponential_ms(Rng& rng, double mean_ms);

/// Truncated-normal duration (milliseconds), floored at `lo_ms`.
Duration truncated_normal_ms(Rng& rng, double mean_ms, double stddev_ms,
                             double lo_ms);

}  // namespace p4u::sim
