// Structured event tracing.
//
// Every consequential action in a run (rule install, message drop, verifier
// reject, controller alarm) is appended to a Trace. Tests assert on traces;
// benches summarize them. Tracing is in-memory and cheap; it can be disabled
// per-run for large sweeps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace p4u::sim {

enum class TraceKind : std::uint8_t {
  kRuleInstalled,     // switch applied a new forwarding rule
  kVerifyAccepted,    // local verification accepted an update
  kVerifyRejected,    // local verification rejected an inconsistent update
  kVerifyDeferred,    // verification waiting (UIM not yet present / capacity)
  kMessageSent,       // data-plane control message (UNM/UIM/...) sent
  kMessageDropped,    // fabric or verifier dropped a message
  kControllerAlarm,   // switch informed controller of an inconsistency
  kUpdateCompleted,   // flow converged to a version (UFM received)
  kCongestionDefer,   // update deferred due to insufficient link capacity
  kPriorityRaised,    // data-plane scheduler raised a flow's priority
  kLoopDetected,      // invariant monitor found a forwarding loop
  kBlackholeDetected, // invariant monitor found a blackhole
  kCapacityViolated,  // invariant monitor found a link over capacity
  kPacketDelivered,   // data packet reached its egress
  kPacketExpired,     // data packet dropped on TTL = 0
  kRuleCleaned,       // stale rule removed by a cleanup packet (§11)
  kLinkDown,          // scheduled fault: link blackholes in both directions
  kLinkUp,            // scheduled fault: link restored
  kSwitchCrash,       // scheduled fault: switch down, registers/rules wiped
  kSwitchRestart,     // scheduled fault: switch serving again (state wiped)
  kInfo,              // free-form annotation
};

const char* to_string(TraceKind k);

struct TraceEntry {
  Time at = 0;
  TraceKind kind = TraceKind::kInfo;
  std::int32_t node = -1;     // switch id, or -1 for controller/fabric
  std::uint64_t flow = 0;     // flow id, or 0 if not flow-scoped
  std::int64_t a = 0, b = 0;  // kind-specific operands (version, distance...)
  std::string note;
};

/// Append-only in-memory trace shared by one simulation run.
class Trace {
 public:
  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void add(TraceEntry e) {
    if (enabled_) entries_.push_back(std::move(e));
  }

  /// Lazy variant for call sites whose entry is expensive to build (string
  /// formatting, describe(pkt)): `make` runs only when tracing is enabled,
  /// so disabled sweeps never pay for discarded strings.
  template <typename F>
  void add_lazy(F&& make) {
    if (enabled_) entries_.push_back(std::forward<F>(make)());
  }

  [[nodiscard]] const std::vector<TraceEntry>& entries() const {
    return entries_;
  }

  /// Number of entries of the given kind.
  [[nodiscard]] std::size_t count(TraceKind k) const;

  /// First entry of the given kind, or nullptr.
  [[nodiscard]] const TraceEntry* first(TraceKind k) const;

  /// Renders entries as one line each ("t=12.3ms node=4 verify-rejected …").
  [[nodiscard]] std::string dump() const;

  void clear() { entries_.clear(); }

 private:
  std::vector<TraceEntry> entries_;
  bool enabled_ = true;
};

}  // namespace p4u::sim
