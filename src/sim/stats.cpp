#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace p4u::sim {

void Samples::add_all(const std::vector<double>& xs) {
  // An empty batch must not invalidate the sorted cache: campaign merges
  // call add_all per run, and runs with no samples are common (incomplete
  // runs) — each one used to force a full re-sort on the next query.
  if (xs.empty()) return;
  xs_.reserve(xs_.size() + xs.size());
  xs_.insert(xs_.end(), xs.begin(), xs.end());
  dirty_ = true;
}

double Samples::min() const {
  if (xs_.empty()) throw std::logic_error("Samples::min on empty set");
  if (!dirty_) return sorted_cache_.front();
  return *std::min_element(xs_.begin(), xs_.end());
}

double Samples::max() const {
  if (xs_.empty()) throw std::logic_error("Samples::max on empty set");
  if (!dirty_) return sorted_cache_.back();
  return *std::max_element(xs_.begin(), xs_.end());
}

double Samples::mean() const {
  if (xs_.empty()) throw std::logic_error("Samples::mean on empty set");
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) /
         static_cast<double>(xs_.size());
}

double Samples::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double x : xs_) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs_.size() - 1));
}

double Samples::percentile(double p) const {
  if (xs_.empty()) throw std::logic_error("Samples::percentile on empty set");
  const std::vector<double>& s = sorted();
  if (s.size() == 1) return s.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double idx = clamped / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, s.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

double Samples::ci_halfwidth(double z) const {
  if (xs_.size() < 2) return 0.0;
  return z * stddev() / std::sqrt(static_cast<double>(xs_.size()));
}

const std::vector<double>& Samples::sorted() const {
  if (dirty_) {
    sorted_cache_ = xs_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    dirty_ = false;
  }
  return sorted_cache_;
}

std::vector<CdfPoint> empirical_cdf(const Samples& s) {
  std::vector<CdfPoint> cdf;
  const std::vector<double>& sorted = s.sorted();
  cdf.reserve(sorted.size());
  const auto n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    cdf.push_back({sorted[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

std::string summary_line(const Samples& s) {
  std::ostringstream os;
  if (s.empty()) return "n=0";
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "mean=" << s.mean() << " p50=" << s.percentile(50)
     << " p95=" << s.percentile(95) << " min=" << s.min()
     << " max=" << s.max() << " n=" << s.count();
  return os.str();
}

}  // namespace p4u::sim
