#include "sim/schedule.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace p4u::sim {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("Schedule: " + what);
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* kind_name(ChoiceRec::Kind k) {
  switch (k) {
    case ChoiceRec::Kind::kPick: return "pick";
    case ChoiceRec::Kind::kCoin: return "coin";
    case ChoiceRec::Kind::kJitter: return "jitter";
  }
  return "?";
}

bool event_class_from_string(std::string_view s, EventClass& out) {
  for (const EventClass c :
       {EventClass::kInternal, EventClass::kDelivery, EventClass::kService,
        EventClass::kInstall, EventClass::kControl, EventClass::kFault,
        EventClass::kTimer, EventClass::kScenario}) {
    if (s == to_string(c)) {
      out = c;
      return true;
    }
  }
  return false;
}

bool coin_kind_from_string(std::string_view s, CoinKind& out) {
  for (const CoinKind k :
       {CoinKind::kCtrlDrop, CoinKind::kDataDrop, CoinKind::kReorder}) {
    if (s == to_string(k)) {
      out = k;
      return true;
    }
  }
  return false;
}

// --- minimal strict JSON reader -------------------------------------------
//
// Only what the schedule format needs: objects, arrays, strings, numbers,
// booleans. Numbers keep their raw token so 64-bit sequence words never
// round-trip through a double.

struct JsonValue {
  enum class Type { kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kBool;
  bool boolean = false;
  std::string text;  // string value or raw number token
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& src) : src_(src) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != src_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= src_.size()) fail("unexpected end of document");
    return src_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "' at offset " +
           std::to_string(pos_));
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (src_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::kString;
      v.text = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.type = JsonValue::Type::kBool;
      v.boolean = false;
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character at offset " + std::to_string(pos_));
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.fields.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= src_.size()) fail("unterminated string");
      const char c = src_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= src_.size()) fail("unterminated escape");
      const char e = src_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > src_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = src_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          if (code > 0x7F) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unsupported escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("empty number token");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.text = src_.substr(start, pos_ - start);
    return v;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
};

// --- typed field access ----------------------------------------------------

const JsonValue& field(const JsonValue& obj, std::string_view name) {
  for (const auto& [k, v] : obj.fields) {
    if (k == name) return v;
  }
  fail("missing field \"" + std::string(name) + "\"");
}

void reject_unknown_fields(const JsonValue& obj,
                           std::initializer_list<std::string_view> allowed) {
  for (const auto& [k, v] : obj.fields) {
    (void)v;
    bool ok = false;
    for (const std::string_view a : allowed) {
      if (k == a) {
        ok = true;
        break;
      }
    }
    if (!ok) fail("unknown field \"" + k + "\"");
  }
}

std::uint64_t as_u64(const JsonValue& v, std::string_view name) {
  if (v.type != JsonValue::Type::kNumber || v.text.empty() ||
      v.text[0] == '-' || v.text.find_first_of(".eE") != std::string::npos) {
    fail("field \"" + std::string(name) + "\" must be a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const std::uint64_t out = std::strtoull(v.text.c_str(), &end, 10);
  if (errno != 0 || end != v.text.c_str() + v.text.size()) {
    fail("field \"" + std::string(name) + "\" is out of range");
  }
  return out;
}

std::int64_t as_i64(const JsonValue& v, std::string_view name) {
  if (v.type != JsonValue::Type::kNumber ||
      v.text.find_first_of(".eE") != std::string::npos) {
    fail("field \"" + std::string(name) + "\" must be an integer");
  }
  errno = 0;
  char* end = nullptr;
  const std::int64_t out = std::strtoll(v.text.c_str(), &end, 10);
  if (errno != 0 || end != v.text.c_str() + v.text.size()) {
    fail("field \"" + std::string(name) + "\" is out of range");
  }
  return out;
}

double as_double(const JsonValue& v, std::string_view name) {
  if (v.type != JsonValue::Type::kNumber) {
    fail("field \"" + std::string(name) + "\" must be a number");
  }
  errno = 0;
  char* end = nullptr;
  const double out = std::strtod(v.text.c_str(), &end);
  if (errno != 0 || end != v.text.c_str() + v.text.size()) {
    fail("field \"" + std::string(name) + "\" is not a valid number");
  }
  return out;
}

const std::string& as_string(const JsonValue& v, std::string_view name) {
  if (v.type != JsonValue::Type::kString) {
    fail("field \"" + std::string(name) + "\" must be a string");
  }
  return v.text;
}

ChoiceRec parse_choice(const JsonValue& obj, Time& last_pick_at) {
  if (obj.type != JsonValue::Type::kObject) fail("choice must be an object");
  ChoiceRec rec;
  const std::string& kind = as_string(field(obj, "kind"), "kind");
  if (kind == "pick") {
    reject_unknown_fields(
        obj, {"kind", "at", "n", "chosen", "seq", "node", "cls", "flow"});
    rec.kind = ChoiceRec::Kind::kPick;
    rec.at = as_i64(field(obj, "at"), "at");
    rec.n_options =
        static_cast<std::uint32_t>(as_u64(field(obj, "n"), "n"));
    rec.chosen =
        static_cast<std::uint32_t>(as_u64(field(obj, "chosen"), "chosen"));
    rec.chosen_seq = as_u64(field(obj, "seq"), "seq");
    rec.tag.node =
        static_cast<std::int32_t>(as_i64(field(obj, "node"), "node"));
    rec.tag.flow = as_u64(field(obj, "flow"), "flow");
    const std::string& cls = as_string(field(obj, "cls"), "cls");
    if (!event_class_from_string(cls, rec.tag.cls)) {
      fail("unknown event class \"" + cls + "\"");
    }
    if (rec.n_options < 1) fail("pick with no options");
    if (rec.chosen >= rec.n_options) fail("pick chose an out-of-range option");
    if (rec.at < last_pick_at) fail("pick timestamps run backwards");
    last_pick_at = rec.at;
    return rec;
  }
  const bool is_coin = kind == "coin";
  if (!is_coin && kind != "jitter") fail("unknown choice kind \"" + kind + "\"");
  rec.kind = is_coin ? ChoiceRec::Kind::kCoin : ChoiceRec::Kind::kJitter;
  const std::string& coin = as_string(field(obj, "coin"), "coin");
  if (!coin_kind_from_string(coin, rec.coin)) {
    fail("unknown coin kind \"" + coin + "\"");
  }
  rec.tag.node = static_cast<std::int32_t>(as_i64(field(obj, "node"), "node"));
  rec.tag.flow = as_u64(field(obj, "flow"), "flow");
  rec.value = as_u64(field(obj, "value"), "value");
  if (is_coin) {
    reject_unknown_fields(obj,
                          {"kind", "coin", "node", "flow", "prob", "value"});
    rec.prob = as_double(field(obj, "prob"), "prob");
    if (rec.prob < 0.0 || rec.prob > 1.0) fail("coin prob outside [0, 1]");
    if (rec.value > 1) fail("coin value must be 0 or 1");
  } else {
    reject_unknown_fields(obj,
                          {"kind", "coin", "node", "flow", "max", "value"});
    rec.max_extra = as_i64(field(obj, "max"), "max");
    if (rec.max_extra < 0) fail("jitter max must be non-negative");
    if (rec.value > static_cast<std::uint64_t>(rec.max_extra)) {
      fail("jitter value exceeds its bound");
    }
  }
  return rec;
}

}  // namespace

std::string Schedule::to_json() const {
  std::string out = "{\n  \"version\": 1,\n  \"meta\": {";
  bool first = true;
  for (const auto& [k, v] : meta) {
    if (!first) out += ", ";
    first = false;
    out += '"';
    out += escape(k);
    out += "\": \"";
    out += escape(v);
    out += '"';
  }
  out += "},\n  \"choices\": [";
  char buf[64];
  for (std::size_t i = 0; i < choices.size(); ++i) {
    const ChoiceRec& c = choices[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"kind\":\"";
    out += kind_name(c.kind);
    out += '"';
    switch (c.kind) {
      case ChoiceRec::Kind::kPick:
        out += ",\"at\":" + std::to_string(c.at);
        out += ",\"n\":" + std::to_string(c.n_options);
        out += ",\"chosen\":" + std::to_string(c.chosen);
        out += ",\"seq\":" + std::to_string(c.chosen_seq);
        out += ",\"node\":" + std::to_string(c.tag.node);
        out += ",\"cls\":\"";
        out += to_string(c.tag.cls);
        out += "\",\"flow\":" + std::to_string(c.tag.flow);
        break;
      case ChoiceRec::Kind::kCoin:
        out += ",\"coin\":\"";
        out += to_string(c.coin);
        out += "\",\"node\":" + std::to_string(c.tag.node);
        out += ",\"flow\":" + std::to_string(c.tag.flow);
        std::snprintf(buf, sizeof buf, "%.17g", c.prob);
        out += ",\"prob\":";
        out += buf;
        out += ",\"value\":" + std::to_string(c.value);
        break;
      case ChoiceRec::Kind::kJitter:
        out += ",\"coin\":\"";
        out += to_string(c.coin);
        out += "\",\"node\":" + std::to_string(c.tag.node);
        out += ",\"flow\":" + std::to_string(c.tag.flow);
        out += ",\"max\":" + std::to_string(c.max_extra);
        out += ",\"value\":" + std::to_string(c.value);
        break;
    }
    out += '}';
  }
  out += choices.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

Schedule Schedule::parse(const std::string& json) {
  JsonReader reader(json);
  const JsonValue root = reader.parse_document();
  if (root.type != JsonValue::Type::kObject) fail("document must be an object");
  reject_unknown_fields(root, {"version", "meta", "choices"});
  if (as_u64(field(root, "version"), "version") != 1) {
    fail("unsupported schedule version");
  }
  Schedule s;
  const JsonValue& meta = field(root, "meta");
  if (meta.type != JsonValue::Type::kObject) fail("\"meta\" must be an object");
  for (const auto& [k, v] : meta.fields) {
    s.meta.emplace_back(k, as_string(v, k));
  }
  const JsonValue& choices = field(root, "choices");
  if (choices.type != JsonValue::Type::kArray) {
    fail("\"choices\" must be an array");
  }
  s.choices.reserve(choices.items.size());
  Time last_pick_at = 0;
  for (const JsonValue& c : choices.items) {
    s.choices.push_back(parse_choice(c, last_pick_at));
  }
  return s;
}

// --- RecordingStrategy -----------------------------------------------------

std::size_t RecordingStrategy::pick(const std::vector<ChoiceOption>& options) {
  const std::size_t chosen = inner_.pick(options);
  if (chosen >= options.size()) {
    throw std::logic_error("RecordingStrategy: inner pick out of range");
  }
  ChoiceRec rec;
  rec.kind = ChoiceRec::Kind::kPick;
  rec.at = options.front().key.at;
  rec.n_options = static_cast<std::uint32_t>(options.size());
  rec.chosen = static_cast<std::uint32_t>(chosen);
  rec.chosen_seq = options[chosen].key.seq;
  rec.tag = options[chosen].tag;
  schedule_.choices.push_back(rec);
  pick_options_.push_back(options);
  return chosen;
}

bool RecordingStrategy::coin(const CoinPoint& cp, Rng& rng) {
  const bool v = inner_.coin(cp, rng);
  ChoiceRec rec;
  rec.kind = ChoiceRec::Kind::kCoin;
  rec.coin = cp.kind;
  rec.tag.node = cp.node;
  rec.tag.flow = cp.flow;
  rec.prob = cp.prob;
  rec.value = v ? 1 : 0;
  schedule_.choices.push_back(rec);
  return v;
}

Duration RecordingStrategy::jitter(const CoinPoint& cp, Duration max_extra,
                                   Rng& rng) {
  const Duration v = inner_.jitter(cp, max_extra, rng);
  ChoiceRec rec;
  rec.kind = ChoiceRec::Kind::kJitter;
  rec.coin = cp.kind;
  rec.tag.node = cp.node;
  rec.tag.flow = cp.flow;
  rec.max_extra = max_extra;
  rec.value = static_cast<std::uint64_t>(v);
  schedule_.choices.push_back(rec);
  return v;
}

// --- ReplayStrategy --------------------------------------------------------

void ReplayStrategy::mismatch(const std::string& what) {
  throw std::runtime_error("ReplayStrategy: schedule does not match run: " +
                           what);
}

const ChoiceRec* ReplayStrategy::next_rec(ChoiceRec::Kind want) {
  if (next_ >= schedule_->choices.size()) return nullptr;
  const ChoiceRec* rec = &schedule_->choices[next_++];
  if (rec->kind != want) {
    mismatch("decision #" + std::to_string(next_ - 1) + " is a " +
             kind_name(rec->kind) + ", run asked for a " + kind_name(want));
  }
  return rec;
}

std::size_t ReplayStrategy::pick(const std::vector<ChoiceOption>& options) {
  const ChoiceRec* rec = next_rec(ChoiceRec::Kind::kPick);
  if (rec == nullptr) return 0;
  if (rec->n_options != options.size()) {
    mismatch("co-enabled set has " + std::to_string(options.size()) +
             " events, schedule recorded " + std::to_string(rec->n_options));
  }
  if (rec->at != options.front().key.at) {
    mismatch("decision time " + std::to_string(options.front().key.at) +
             " differs from recorded " + std::to_string(rec->at));
  }
  if (options[rec->chosen].key.seq != rec->chosen_seq) {
    mismatch("chosen event seq " +
             std::to_string(options[rec->chosen].key.seq) +
             " differs from recorded " + std::to_string(rec->chosen_seq));
  }
  return rec->chosen;
}

bool ReplayStrategy::coin(const CoinPoint& cp, Rng& rng) {
  (void)rng;  // replay never draws: decisions are forced
  const ChoiceRec* rec = next_rec(ChoiceRec::Kind::kCoin);
  if (rec == nullptr) return false;
  if (rec->coin != cp.kind || rec->tag.node != cp.node ||
      rec->tag.flow != cp.flow) {
    mismatch(std::string("coin point ") + to_string(cp.kind) + "@node " +
             std::to_string(cp.node) + " differs from recorded " +
             to_string(rec->coin) + "@node " + std::to_string(rec->tag.node));
  }
  return rec->value != 0;
}

Duration ReplayStrategy::jitter(const CoinPoint& cp, Duration max_extra,
                                Rng& rng) {
  (void)rng;
  const ChoiceRec* rec = next_rec(ChoiceRec::Kind::kJitter);
  if (rec == nullptr) return 0;
  if (rec->coin != cp.kind || rec->tag.node != cp.node ||
      rec->tag.flow != cp.flow) {
    mismatch("jitter point differs from recorded");
  }
  if (rec->value > static_cast<std::uint64_t>(max_extra)) {
    mismatch("recorded jitter exceeds the run's bound");
  }
  return static_cast<Duration>(rec->value);
}

}  // namespace p4u::sim
