#include "sim/event_queue.hpp"

#include <stdexcept>

namespace p4u::sim {

std::uint32_t Simulator::allocate_slot() {
  if (!free_.empty()) {
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    return idx;
  }
  if (next_fresh_ == kMaxSlots) {
    throw std::length_error(
        "Simulator: more than 2^20 concurrently pending events");
  }
  if ((next_fresh_ >> kSlabShift) == slabs_.size()) {
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
    tags_.resize(tags_.size() + kSlabSize);
  }
  return next_fresh_++;
}

void Simulator::raise_seq_overflow() {
  throw std::length_error("Simulator: event sequence counter exhausted");
}

void Simulator::reserve(std::size_t n) {
  if (n > kMaxSlots) n = kMaxSlots;
  heap_.reserve(n);
  free_.reserve(n);
  const std::size_t want_slabs = (n + kSlabSize - 1) >> kSlabShift;
  slabs_.reserve(want_slabs);
  while (slabs_.size() < want_slabs) {
    slabs_.push_back(std::make_unique<Slot[]>(kSlabSize));
    tags_.resize(tags_.size() + kSlabSize);
  }
}

void Simulator::heap_push(HeapEntry e) {
  // Hole-based sift-up: shift parents down into the hole, write `e` once.
  std::size_t i = heap_.size();
  heap_.push_back(e);
  if (heap_.size() > pending_peak_) pending_peak_ = heap_.size();
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Simulator::heap_remove_min() {
  const std::size_t n = heap_.size() - 1;
  const HeapEntry moving = heap_[n];
  heap_.pop_back();
  if (n == 0) return;
  // Hole-based sift-down from the root: pull the best child up into the
  // hole until `moving` fits, then write it once.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first_child = (i << 2) + 1;
    if (first_child >= n) break;
    const std::size_t end =
        first_child + 4 <= n ? first_child + 4 : n;
    std::size_t best = first_child;
    for (std::size_t c = first_child + 1; c < end; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], moving)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moving;
}

Simulator::HeapEntry Simulator::strategy_select() {
  const Time t = heap_.front().at;
  // Pop every event scheduled for this instant; the heap yields them in
  // (at, seq) order, so the options vector is already sorted by EventOrder
  // and index 0 is the event the historical tie-break would run.
  co_enabled_.clear();
  options_.clear();
  while (!heap_.empty() && heap_.front().at == t) {
    const HeapEntry e = heap_.front();
    heap_remove_min();
    co_enabled_.push_back(e);
    options_.push_back(ChoiceOption{EventKey{e.at, e.seq_idx}, tags_[e.idx()]});
  }
  // The strategy sees singleton sets too: an explorer tracking an
  // independence-based sleep set must observe every executed event, not
  // just the contested ones, to keep its pruning sound.
  const std::size_t chosen = strategy_->pick(options_);
  if (chosen >= options_.size()) {
    throw std::logic_error(
        "Simulator: strategy picked an out-of-range co-enabled event");
  }
  // Re-push the losers with their keys intact: their seq words are
  // unchanged, so among themselves they keep the same relative order.
  for (std::size_t i = 0; i < co_enabled_.size(); ++i) {
    if (i != chosen) heap_push(co_enabled_[i]);
  }
  return co_enabled_[chosen];
}

bool Simulator::pop_and_run(Time until) {
  if (heap_.empty()) return false;
  HeapEntry top = heap_.front();
  if (top.at > until) return false;
  if (strategy_ == nullptr) [[likely]] {
    // Start pulling the winning handler's slab lines in now; the fetch
    // overlaps the sift-down below, which never touches the pool.
    Handler& pf = slot(top.idx());
    __builtin_prefetch(static_cast<void*>(&pf), 1);
    __builtin_prefetch(reinterpret_cast<char*>(&pf) + 64, 1);
    __builtin_prefetch(reinterpret_cast<char*>(&pf) + 128, 1);
    heap_remove_min();
  } else {
    top = strategy_select();
  }
  Handler& fn = slot(top.idx());
  now_ = top.at;
  ++executed_;
  // Attribute everything the handler schedules to this event's node, so
  // OrderDomain keys depend only on the (K-independent) per-node handler
  // sequence. One predictable branch on the legacy path.
  if (order_ != nullptr) order_->set_current_origin(tags_[top.idx()].node);
  // Run the handler in place in its slab slot. The slot is not on the free
  // list while the handler runs, so the handler may freely schedule new
  // events (they take other slots); destroy and recycle happen only after
  // it returns. Slot numbering never feeds the (at, seq) order, so this
  // cannot change the pop sequence.
  fn();
  fn.reset();
  free_.push_back(top.idx());
  return true;
}

std::size_t Simulator::run(Time until) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && pop_and_run(until)) ++n;
  return n;
}

std::size_t Simulator::run_steps(std::size_t max_events) {
  stopped_ = false;
  std::size_t n = 0;
  while (n < max_events && !stopped_ && pop_and_run(kTimeInfinity)) ++n;
  return n;
}

}  // namespace p4u::sim
