#include "sim/event_queue.hpp"

#include <utility>

namespace p4u::sim {

void Simulator::schedule_in(Duration delay, Handler fn) {
  if (delay < 0) delay = 0;
  // Saturate: a delay near kTimeInfinity must park the event at the end of
  // time, not wrap `now_ + delay` into the past.
  const Time at =
      delay > kTimeInfinity - now_ ? kTimeInfinity : now_ + delay;
  schedule_at(at, std::move(fn));
}

void Simulator::schedule_at(Time at, Handler fn) {
  if (at < now_) at = now_;
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

bool Simulator::pop_and_run(Time until) {
  if (queue_.empty()) return false;
  const Event& top = queue_.top();
  if (top.at > until) return false;
  // Copy out before pop: the handler may schedule new events.
  Time at = top.at;
  Handler fn = std::move(const_cast<Event&>(top).fn);
  queue_.pop();
  now_ = at;
  ++executed_;
  fn();
  return true;
}

std::size_t Simulator::run(Time until) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_ && pop_and_run(until)) ++n;
  return n;
}

std::size_t Simulator::run_steps(std::size_t max_events) {
  stopped_ = false;
  std::size_t n = 0;
  while (n < max_events && !stopped_ && pop_and_run(kTimeInfinity)) ++n;
  return n;
}

}  // namespace p4u::sim
