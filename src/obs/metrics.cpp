#include "obs/metrics.hpp"

#include <algorithm>

namespace p4u::obs {

void Histogram::observe(double x) {
  if (data_ == nullptr) return;
  HistogramData& d = *data_;
  if (d.count == 0) {
    d.min = d.max = x;
  } else {
    d.min = std::min(d.min, x);
    d.max = std::max(d.max, x);
  }
  ++d.count;
  d.sum += x;
  const auto it = std::lower_bound(d.bounds.begin(), d.bounds.end(), x);
  ++d.counts[static_cast<std::size_t>(it - d.bounds.begin())];
}

const std::vector<double>& latency_buckets_ms() {
  static const std::vector<double> kBuckets{
      0.1,  0.2,  0.5,   1.0,   2.0,   5.0,    10.0,   20.0,
      50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
      20000.0, 50000.0, 100000.0};
  return kBuckets;
}

std::string MetricsRegistry::encode(const LabelSet& labels) {
  LabelSet sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const auto& [k, v] : sorted) {
    out += k;
    out += '=';
    out += v;
    out += '\x1f';  // unit separator: cannot appear in sane label values
  }
  return out;
}

Counter MetricsRegistry::counter(const std::string& name,
                                 const LabelSet& labels) {
  auto [it, inserted] = counters_.try_emplace({name, encode(labels)});
  if (inserted) it->second.labels = labels;
  return Counter(&it->second.value);
}

Gauge MetricsRegistry::gauge(const std::string& name, const LabelSet& labels) {
  auto [it, inserted] = gauges_.try_emplace({name, encode(labels)});
  if (inserted) it->second.labels = labels;
  return Gauge(&it->second.value);
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     const LabelSet& labels,
                                     const std::vector<double>& bounds) {
  auto [it, inserted] = histograms_.try_emplace({name, encode(labels)});
  if (inserted) {
    it->second.labels = labels;
    it->second.data.bounds = bounds;
    std::sort(it->second.data.bounds.begin(), it->second.data.bounds.end());
    it->second.data.counts.assign(it->second.data.bounds.size() + 1, 0);
  }
  return Histogram(&it->second.data);
}

std::vector<MetricsRegistry::Row<std::uint64_t>> MetricsRegistry::counters()
    const {
  std::vector<Row<std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [key, cell] : counters_) {
    out.push_back({key.first, cell.labels, cell.value});
  }
  return out;
}

std::vector<MetricsRegistry::Row<double>> MetricsRegistry::gauges() const {
  std::vector<Row<double>> out;
  out.reserve(gauges_.size());
  for (const auto& [key, cell] : gauges_) {
    out.push_back({key.first, cell.labels, cell.value});
  }
  return out;
}

std::vector<MetricsRegistry::Row<const HistogramData*>>
MetricsRegistry::histograms() const {
  std::vector<Row<const HistogramData*>> out;
  out.reserve(histograms_.size());
  for (const auto& [key, cell] : histograms_) {
    out.push_back({key.first, cell.labels, &cell.data});
  }
  return out;
}

std::uint64_t MetricsRegistry::counter_total(const std::string& name) const {
  std::uint64_t total = 0;
  for (auto it = counters_.lower_bound({name, std::string()});
       it != counters_.end() && it->first.first == name; ++it) {
    total += it->second.value;
  }
  return total;
}

std::uint64_t MetricsRegistry::counter_value(const std::string& name,
                                             const LabelSet& labels) const {
  const auto it = counters_.find({name, encode(labels)});
  return it == counters_.end() ? 0 : it->second.value;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [key, cell] : other.counters_) {
    auto [it, inserted] = counters_.try_emplace(key, cell);
    if (!inserted) it->second.value += cell.value;
  }
  for (const auto& [key, cell] : other.gauges_) {
    gauges_[key] = cell;  // latest wins
  }
  for (const auto& [key, cell] : other.histograms_) {
    auto [it, inserted] = histograms_.try_emplace(key, cell);
    if (inserted) continue;
    HistogramData& dst = it->second.data;
    const HistogramData& src = cell.data;
    if (src.count == 0) continue;
    if (dst.bounds != src.bounds) {
      // Incompatible buckets: keep dst's shape, fold in the scalars only
      // (counts cannot be re-bucketed without the raw observations).
      dst.counts.back() += src.count;
    } else {
      for (std::size_t i = 0; i < dst.counts.size(); ++i) {
        dst.counts[i] += src.counts[i];
      }
    }
    if (dst.count == 0) {
      dst.min = src.min;
      dst.max = src.max;
    } else {
      dst.min = std::min(dst.min, src.min);
      dst.max = std::max(dst.max, src.max);
    }
    dst.count += src.count;
    dst.sum += src.sum;
  }
}

}  // namespace p4u::obs
