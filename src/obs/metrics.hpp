// Metrics: the quantitative observability layer.
//
// Every run-level number the paper's figures are built from (message counts
// per switch, drop counts, per-hop latencies, controller preparation times)
// is recorded through handles vended by a MetricsRegistry. A metric is
// identified by a name plus a label set — e.g. counter "fabric.tx" with
// {"switch":"7","msg":"UIM"} — mirroring the Prometheus data model so that
// run reports are mechanically aggregable across runs and PRs.
//
// Handles are cheap value types holding a stable pointer into the registry
// (std::map nodes never move), so hot paths pay one pointer chase per
// update once the handle is resolved. A default-constructed handle is a
// null sink: instrumented code works unwired.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace p4u::obs {

/// Sorted key/value label pairs ({"switch":"7","msg":"UIM"}).
using LabelSet = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) noexcept {
    if (cell_ != nullptr) *cell_ += n;
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return cell_ == nullptr ? 0 : *cell_;
  }
  /// True once bound to a registry cell (caches use this to lazily resolve
  /// without eagerly creating cells that would alter report contents).
  [[nodiscard]] bool resolved() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint64_t* cell) : cell_(cell) {}
  std::uint64_t* cell_ = nullptr;
};

/// Instantaneous level (queue depth, reserved capacity).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) noexcept {
    if (cell_ != nullptr) *cell_ = v;
  }
  void add(double d) noexcept {
    if (cell_ != nullptr) *cell_ += d;
  }
  [[nodiscard]] double value() const noexcept {
    return cell_ == nullptr ? 0.0 : *cell_;
  }
  [[nodiscard]] bool resolved() const noexcept { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(double* cell) : cell_(cell) {}
  double* cell_ = nullptr;
};

/// Fixed-bucket histogram state. `bounds` are inclusive upper bucket edges
/// in ascending order; `counts` has bounds.size() + 1 entries, the last one
/// catching observations above every bound (+inf bucket).
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double x);
  [[nodiscard]] std::uint64_t count() const noexcept {
    return data_ == nullptr ? 0 : data_->count;
  }
  [[nodiscard]] double sum() const noexcept {
    return data_ == nullptr ? 0 : data_->sum;
  }
  [[nodiscard]] double mean() const noexcept {
    return data_ == nullptr || data_->count == 0
               ? 0.0
               : data_->sum / static_cast<double>(data_->count);
  }
  [[nodiscard]] const HistogramData* data() const noexcept { return data_; }
  [[nodiscard]] bool resolved() const noexcept { return data_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(HistogramData* data) : data_(data) {}
  HistogramData* data_ = nullptr;
};

/// Default latency buckets (milliseconds): 100 us .. 100 s, log-spaced.
const std::vector<double>& latency_buckets_ms();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolves (creating on first use) the metric cell for (name, labels).
  /// Handles stay valid for the registry's lifetime; re-resolving the same
  /// (name, labels) yields a handle to the same cell.
  Counter counter(const std::string& name, const LabelSet& labels = {});
  Gauge gauge(const std::string& name, const LabelSet& labels = {});
  /// `bounds` are fixed at first resolution; later calls with different
  /// bounds reuse the original buckets (bounds are part of the family, not
  /// the label set). Defaults to latency_buckets_ms().
  Histogram histogram(const std::string& name, const LabelSet& labels = {},
                      const std::vector<double>& bounds = latency_buckets_ms());

  // --- read-side (reports, tests) ---

  template <typename Value>
  struct Row {
    std::string name;
    LabelSet labels;
    Value value;
  };

  /// Rows sorted by (name, labels) — deterministic report order.
  [[nodiscard]] std::vector<Row<std::uint64_t>> counters() const;
  [[nodiscard]] std::vector<Row<double>> gauges() const;
  [[nodiscard]] std::vector<Row<const HistogramData*>> histograms() const;

  /// Sum of one counter family across all label sets.
  [[nodiscard]] std::uint64_t counter_total(const std::string& name) const;
  /// Value of one exact (name, labels) counter (0 if absent).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name,
                                            const LabelSet& labels) const;

  /// Folds another run's registry into this one: counters add, histograms
  /// merge bucket-wise, gauges keep the incoming (latest) value. Used by
  /// experiments to aggregate per-seed TestBed registries into one report.
  void merge_from(const MetricsRegistry& other);

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

 private:
  // Key = (metric name, canonical label encoding). std::map keeps cell
  // addresses stable across inserts and moves, which the handles rely on.
  using Key = std::pair<std::string, std::string>;
  struct Labeled {
    LabelSet labels;
  };
  struct CounterCell : Labeled {
    std::uint64_t value = 0;
  };
  struct GaugeCell : Labeled {
    double value = 0.0;
  };
  struct HistogramCell : Labeled {
    HistogramData data;
  };

  static std::string encode(const LabelSet& labels);

  std::map<Key, CounterCell> counters_;
  std::map<Key, GaugeCell> gauges_;
  std::map<Key, HistogramCell> histograms_;
};

}  // namespace p4u::obs
