#include "obs/run_report.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace p4u::obs {

namespace {

/// JSON number formatting: finite doubles round-trip via %.17g; NaN and
/// infinities (not representable in JSON) are emitted as null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string labels_json(const LabelSet& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

RunReport::RunReport(std::string out_dir, std::string run_name)
    : out_dir_(std::move(out_dir)), run_name_(std::move(run_name)) {}

void RunReport::set_meta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, "\"" + json_escape(value) + "\"");
}

void RunReport::set_meta(const std::string& key, std::uint64_t value) {
  meta_.emplace_back(key, std::to_string(value));
}

void RunReport::add_metrics(const MetricsRegistry& m) {
  for (const auto& row : m.counters()) {
    lines_.push_back("{\"type\":\"counter\",\"name\":\"" +
                     json_escape(row.name) +
                     "\",\"labels\":" + labels_json(row.labels) +
                     ",\"value\":" + std::to_string(row.value) + "}");
  }
  for (const auto& row : m.gauges()) {
    lines_.push_back("{\"type\":\"gauge\",\"name\":\"" +
                     json_escape(row.name) +
                     "\",\"labels\":" + labels_json(row.labels) +
                     ",\"value\":" + json_number(row.value) + "}");
  }
  for (const auto& row : m.histograms()) {
    const HistogramData& d = *row.value;
    std::string buckets = "[";
    for (std::size_t i = 0; i < d.counts.size(); ++i) {
      if (i > 0) buckets += ",";
      const std::string le =
          i < d.bounds.size() ? json_number(d.bounds[i]) : "\"inf\"";
      buckets += "{\"le\":" + le +
                 ",\"count\":" + std::to_string(d.counts[i]) + "}";
    }
    buckets += "]";
    lines_.push_back(
        "{\"type\":\"histogram\",\"name\":\"" + json_escape(row.name) +
        "\",\"labels\":" + labels_json(row.labels) +
        ",\"count\":" + std::to_string(d.count) +
        ",\"sum\":" + json_number(d.sum) + ",\"min\":" + json_number(d.min) +
        ",\"max\":" + json_number(d.max) + ",\"buckets\":" + buckets + "}");
  }
}

void RunReport::add_samples(const std::string& name, const sim::Samples& s,
                            const std::string& unit) {
  std::string raw = "[";
  for (std::size_t i = 0; i < s.raw().size(); ++i) {
    if (i > 0) raw += ",";
    raw += json_number(s.raw()[i]);
    csv_rows_.emplace_back(name, s.raw()[i]);
  }
  raw += "]";
  std::string line = "{\"type\":\"samples\",\"name\":\"" + json_escape(name) +
                     "\",\"unit\":\"" + json_escape(unit) +
                     "\",\"count\":" + std::to_string(s.count());
  if (!s.empty()) {
    line += ",\"mean\":" + json_number(s.mean()) +
            ",\"min\":" + json_number(s.min()) +
            ",\"max\":" + json_number(s.max()) +
            ",\"p50\":" + json_number(s.percentile(50)) +
            ",\"p95\":" + json_number(s.percentile(95)) +
            ",\"p99\":" + json_number(s.percentile(99)) +
            ",\"stddev\":" + json_number(s.stddev());
  }
  line += ",\"raw\":" + raw + "}";
  lines_.push_back(std::move(line));
}

void RunReport::add_trace(const sim::Trace& trace) {
  for (const sim::TraceEntry& e : trace.entries()) {
    lines_.push_back(
        "{\"type\":\"trace\",\"at_ms\":" + json_number(sim::to_ms(e.at)) +
        ",\"kind\":\"" + sim::to_string(e.kind) +
        "\",\"node\":" + std::to_string(e.node) +
        ",\"flow\":" + std::to_string(e.flow) +
        ",\"a\":" + std::to_string(e.a) + ",\"b\":" + std::to_string(e.b) +
        ",\"note\":\"" + json_escape(e.note) + "\"}");
  }
}

std::string RunReport::write() const {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(out_dir_, ec);
  if (ec) {
    throw std::runtime_error("RunReport: cannot create output directory '" +
                             out_dir_ + "': " + ec.message());
  }
  const std::string jsonl_path =
      (fs::path(out_dir_) / (run_name_ + ".jsonl")).string();
  {
    std::ofstream out(jsonl_path, std::ios::trunc);
    if (!out) {
      throw std::runtime_error("RunReport: cannot open " + jsonl_path);
    }
    std::string meta = "{\"type\":\"meta\",\"run\":\"" +
                       json_escape(run_name_) + "\"";
    for (const auto& [k, v] : meta_) {
      meta += ",\"" + json_escape(k) + "\":" + v;
    }
    meta += "}";
    out << meta << '\n';
    for (const std::string& line : lines_) out << line << '\n';
    if (!out) {
      throw std::runtime_error("RunReport: short write to " + jsonl_path);
    }
  }
  if (!csv_rows_.empty()) {
    const std::string csv_path =
        (fs::path(out_dir_) / (run_name_ + ".csv")).string();
    std::ofstream csv(csv_path, std::ios::trunc);
    if (!csv) {
      throw std::runtime_error("RunReport: cannot open " + csv_path);
    }
    csv << "series,value\n";
    for (const auto& [series, value] : csv_rows_) {
      csv << series << ',' << json_number(value) << '\n';
    }
  }
  return jsonl_path;
}

}  // namespace p4u::obs
