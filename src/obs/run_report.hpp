// RunReport: machine-readable run artifacts.
//
// Serializes a run's MetricsRegistry, its sim::Trace, and any number of
// named sim::Samples series into one JSON-Lines file (plus a flat CSV of
// the raw samples) under an output directory — the `--out <dir>` flag every
// bench and example accepts. One line = one self-describing JSON object
// with a "type" discriminator; see EXPERIMENTS.md ("Run reports") for the
// full schema. JSONL keeps the writer trivial, appends cheap, and lets
// downstream tooling (jq, pandas) consume reports without a parser of ours.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace p4u::obs {

/// Escapes a string for inclusion inside JSON double quotes.
std::string json_escape(const std::string& s);

class RunReport {
 public:
  /// `run_name` becomes the file stem: <out_dir>/<run_name>.jsonl.
  RunReport(std::string out_dir, std::string run_name);

  /// Free-form metadata, serialized into the leading "meta" line.
  void set_meta(const std::string& key, const std::string& value);
  void set_meta(const std::string& key, std::uint64_t value);

  /// Adds every counter/gauge/histogram of `m` to the report.
  void add_metrics(const MetricsRegistry& m);

  /// Adds one samples series ("fig7a.P4Update.update_time_ms", unit "ms"):
  /// a summary line plus the raw values (exact CDF reconstruction).
  void add_samples(const std::string& name, const sim::Samples& s,
                   const std::string& unit = "ms");

  /// Appends every trace entry as a "trace" line. Skip for large sweeps.
  void add_trace(const sim::Trace& trace);

  /// Writes <out_dir>/<run_name>.jsonl (and .csv when samples were added),
  /// creating the directory if needed. Returns the JSONL path. Throws
  /// std::runtime_error on I/O failure.
  std::string write() const;

  [[nodiscard]] const std::string& out_dir() const { return out_dir_; }

 private:
  std::string out_dir_;
  std::string run_name_;
  std::vector<std::pair<std::string, std::string>> meta_;  // pre-encoded JSON
  std::vector<std::string> lines_;                         // body JSONL lines
  std::vector<std::pair<std::string, double>> csv_rows_;   // (series, value)
};

}  // namespace p4u::obs
