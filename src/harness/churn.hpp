// Churn workload: steady-state request streams for long-running updates.
//
// ROADMAP item 3: everything before this PR issued one batch at t=10ms and
// waited. Real controllers see continuous churn — flow arrivals, removals,
// and reroutes at a sustained rate — and their queueing behaviour under
// that load (admission depth, tail completion latency, superseded work) is
// what bench/churn measures.
//
// The workload is generated OFFLINE as a pure function of (graph, seed,
// params): `make_churn_workload` rolls the endpoint pairs, the initial
// population, and the full Poisson-timed event list before the bed exists,
// so every system under test replays the byte-identical request stream —
// cross-system rows of BENCH_churn.json differ only in how the system
// handles the load, never in the load itself.
//
// Overlap knob: endpoint pairs are drawn from a bounded pool (`pairs`), so
// shrinking the pool makes more concurrent reroutes share segments (the
// contended regime the paper's dependency analysis exists for); growing it
// spreads the load thin.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "control/flow_db.hpp"
#include "harness/scenario.hpp"
#include "net/flow.hpp"
#include "net/graph.hpp"
#include "net/paths.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace p4u::harness {

struct ChurnParams {
  /// Distinct endpoint pairs in the pool (the segment-overlap knob).
  std::size_t pairs = 32;
  /// Flows deployed before t=0, dealt round-robin over the pairs.
  std::size_t initial_flows = 64;
  /// Poisson arrival rate of churn requests (per virtual second).
  double arrivals_per_sec = 50.0;
  /// First possible arrival; the stream spans [start, start + duration).
  sim::Time start = sim::milliseconds(10);
  sim::Duration duration = sim::seconds(60);
  /// Request mix (weights; normalized internally). Adds deploy a fresh
  /// flow, removes retire an active one, reroutes move one onto another
  /// of its pair's precomputed paths.
  double w_add = 0.15;
  double w_remove = 0.15;
  double w_reroute = 0.70;
  /// Paths precomputed per pair (k-shortest by hops); reroutes pick among
  /// them. Pairs with fewer than 2 distinct paths are rejected.
  std::size_t paths_per_pair = 3;
  /// Candidate endpoints; empty = every node.
  std::vector<net::NodeId> endpoints;
};

/// One scheduled request. `flow_slot` indexes ChurnWorkload::flows;
/// `path_choice` indexes the slot's pair's path list (reroutes only).
struct ChurnEvent {
  sim::Time at = 0;
  control::RequestKind kind = control::RequestKind::kReroute;
  std::size_t flow_slot = 0;
  std::size_t path_choice = 0;
};

/// The fully rolled workload: pure data, shared read-only across systems.
struct ChurnWorkload {
  struct PairPaths {
    net::NodeId src = 0;
    net::NodeId dst = 0;
    std::vector<net::Path> paths;  // paths[0] = primary (deploy path)
  };
  struct FlowSlot {
    net::Flow flow;
    std::size_t pair = 0;
    bool initial = false;  // deployed before t=0 (vs. by a kAdd event)
  };
  std::vector<PairPaths> pairs;
  std::vector<FlowSlot> flows;
  std::vector<ChurnEvent> events;  // sorted by `at` (generation order)
};

/// Rolls the workload. Pure: no bed, no simulator — the same (graph, seed,
/// params) always yields the same workload. Throws std::logic_error when
/// no endpoint pair offers two distinct paths.
[[nodiscard]] ChurnWorkload make_churn_workload(const net::Graph& g,
                                                std::uint64_t seed,
                                                const ChurnParams& params);

/// Replays `wl` against one bed: deploys the initial population now and
/// schedules every event (adds deploy + note kAdd; removes note kRemove;
/// reroutes submit through the admission queue). Call before bed.run().
void install_churn(TestBed& bed, const ChurnWorkload& wl);

}  // namespace p4u::harness
