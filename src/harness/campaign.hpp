// Campaign: declarative experiment specs over the simulator.
//
// Every figure in the paper's §9 evaluation is a matrix of (topology ×
// scenario family × system × seeds). A RunSpec names one cell of that
// matrix; a Campaign expands its specs into independent seeded jobs (one
// TestBed, Rng, InvariantMonitor, and MetricsRegistry per job), runs them
// — serially or across a thread pool (harness/parallel_runner.hpp) — and
// merges per-spec results in spec-then-seed order. Because jobs share
// nothing mutable and the merge order is fixed, the merged result is
// byte-identical whatever the job count: `--jobs 8` is the same experiment
// as `--jobs 1`, just ~8x sooner.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/churn.hpp"
#include "harness/scenario.hpp"
#include "harness/traffic.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"

namespace p4u::harness {

/// Aggregated outcome of one spec's seeded runs.
struct ExperimentResult {
  sim::Samples update_times_ms;  // per run: the measured completion time
  std::uint64_t alarms = 0;
  InvariantMonitor::Violations violations;
  std::uint64_t incomplete_runs = 0;
  /// Merged across every seeded run (counters add, histograms merge).
  obs::MetricsRegistry metrics;
};

/// The scenario family a RunSpec belongs to; picks the per-seed job body.
enum class ScenarioFamily {
  kSingleFlow,        // §9.2: one flow old -> new; sample = update duration
  kMultiFlow,         // §9.2: gravity batch; sample = last flow's completion
  kFig2Inconsistency, // §4.1 demo; sample = packets delivered at the egress
  kFig4FastForward,   // §4.2 demo; sample = U3 completion time
  kChaos,             // gravity batch + per-seed link-down & switch-crash
                      // mid-update; sample = updates settling kCompleted
  kScale,             // million-flow flat-state campaign: scale_flows
                      // resident flows over pinned edge pairs, a prefix of
                      // scale_update_flows rerouted in one batch; sample =
                      // the batch's last completion time
  kChurn,             // steady-state churn: a Poisson stream of add /
                      // remove / reroute requests through the admission
                      // queue; sample = settled requests per virtual
                      // second, tails in churn.latency_p{50,99,999}_ms
};

const char* to_string(ScenarioFamily f);

/// One cell of an evaluation matrix: everything a seeded run needs, plus
/// how many seeds to expand it into. Declarative — building a RunSpec
/// executes nothing.
struct RunSpec {
  /// Series name for reports, e.g. "fig7a.P4Update.update_time_ms".
  std::string slug;
  ScenarioFamily family = ScenarioFamily::kSingleFlow;
  /// Shared read-only across jobs; each TestBed copies it. Unused by the
  /// demo families (they build their own §4 topologies).
  std::shared_ptr<const net::Graph> graph;
  // Single-flow knobs.
  net::Path old_path;
  net::Path new_path;
  // Multi-flow knobs.
  TrafficParams traffic;
  // Chaos knobs (kChaos only): each seeded run draws one link outage and
  // one switch crash — element and instant chosen from a fault-only rng
  // stream inside [chaos_from, chaos_to] — and appends them to
  // `bed.fault_plan`. Both outages heal after `chaos_outage`.
  sim::Time chaos_from = sim::milliseconds(20);
  sim::Time chaos_to = sim::milliseconds(150);
  sim::Duration chaos_outage = sim::seconds(2);
  // Scale knobs (kScale only). The run deploys `scale_flows` resident
  // flows with synthetic unique ids (splitmix64 of the flow index —
  // bijective, so a million flows never collide) distributed round-robin
  // over up to `scale_pairs` pinned edge-switch (src, dst) pairs; the
  // first `scale_update_flows` of them are rerouted old -> 2nd-shortest
  // in one batch. Keeping the distinct pair set small bounds the k-paths
  // precompute while the per-flow state still scales with scale_flows.
  std::size_t scale_flows = 100000;
  std::size_t scale_update_flows = 1000;
  std::size_t scale_pairs = 256;
  /// Candidate flow endpoints (e.g. the fat-tree's edge switches); pairs
  /// are drawn from here. Empty = every node is a candidate.
  std::vector<net::NodeId> scale_endpoints;
  // Churn knobs (kChurn only): the offline-rolled request stream; see
  // harness/churn.hpp. `bed.admission` bounds the in-flight window.
  ChurnParams churn;
  /// System under test, latency model, fault knobs, congestion mode, ...
  /// (`bed.seed` is overwritten per run with base_seed + run index).
  TestBedParams bed;
  /// Optional per-run event-ordering strategy (e.g. a SeededStrategy for
  /// A/B-testing the strategy path, or a ReplayStrategy for re-running a
  /// recorded schedule). Called once per seeded job with that job's seed;
  /// the job owns the returned strategy for its bed's lifetime. Leave
  /// empty for the simulator's historical fast path. Note: the §4 demo
  /// families build their own beds and ignore this hook.
  std::function<std::unique_ptr<sim::ScheduleStrategy>(std::uint64_t)>
      strategy_factory;
  int runs = 30;
  std::uint64_t base_seed = 1000;
  std::string sample_unit = "ms";
};

/// Outcome of a single seeded run (one expanded job).
struct RunOutcome {
  std::optional<double> sample;  // absent = the run did not complete
  std::uint64_t alarms = 0;
  InvariantMonitor::Violations violations;
  obs::MetricsRegistry metrics;
};

/// Executes one seeded run of `spec` (seed = base_seed + run_index).
/// Thread-safe for concurrent calls with distinct run indices: the job
/// owns its whole simulation stack.
RunOutcome execute_run(const RunSpec& spec, int run_index);

/// One spec's merged outcome, in the campaign's spec order.
struct SpecResult {
  std::string slug;
  std::string sample_unit;
  ExperimentResult result;
};

class Campaign {
 public:
  /// Appends a spec; returns it for fluent tweaks.
  RunSpec& add(RunSpec spec);

  [[nodiscard]] const std::vector<RunSpec>& specs() const { return specs_; }
  /// Total number of seeded jobs the campaign expands into.
  [[nodiscard]] std::size_t total_runs() const;

  /// Expands every spec into seeded jobs, executes them on up to `jobs`
  /// workers (<= 0: every core), and merges outcomes in spec-then-seed
  /// order. The merged results are byte-identical for every job count.
  [[nodiscard]] std::vector<SpecResult> run(int jobs = 1) const;

 private:
  std::vector<RunSpec> specs_;
};

/// Convenience used by every bench: builds a RunReport named `run_name`
/// under `out_dir` carrying each spec's merged metrics and sample series
/// (named by slug), plus the given meta entries. Returns the JSONL path,
/// or an empty string when out_dir is empty.
std::string write_campaign_report(
    const std::string& out_dir, const std::string& run_name,
    const std::vector<std::pair<std::string, std::string>>& meta,
    const std::vector<SpecResult>& results);

}  // namespace p4u::harness
