// Experiment drivers for the paper's evaluation (§9): thin wrappers over
// the campaign subsystem (harness/campaign.hpp) for callers that want one
// scenario family on one topology without building a spec table. The bench
// binaries declare RunSpec tables and run them through a Campaign directly.
#pragma once

#include <string>
#include <vector>

#include "harness/campaign.hpp"
#include "harness/scenario.hpp"
#include "harness/traffic.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"

namespace p4u::harness {

struct SingleFlowConfig {
  net::Path old_path;
  net::Path new_path;
  int runs = 30;
  std::uint64_t base_seed = 1000;
  TestBedParams bed;  // system/topology-independent knobs
};

/// §9.2 single-flow scenario: deploy one flow on old_path, update it to
/// new_path, measure UIM-send -> UFM-receive. Per-node exp(100 ms)
/// straggler delays are set via bed.switch_params. Runs serially; use a
/// Campaign for parallel sweeps.
ExperimentResult run_single_flow(const net::Graph& g,
                                 const SingleFlowConfig& cfg);

struct MultiFlowConfig {
  TrafficParams traffic;
  int runs = 30;
  std::uint64_t base_seed = 5000;
  TestBedParams bed;
};

/// §9.2 multi-flow scenario: one flow per node (gravity sizes near
/// capacity), all moved from shortest to 2nd-shortest path in one batch;
/// the sample is the completion time of the last flow.
ExperimentResult run_multi_flow(const net::Graph& g,
                                const MultiFlowConfig& cfg);

/// Convenience: long-detour single-flow paths for a WAN — picks the
/// diameter-realizing node pair (by hops) and uses the 2nd-shortest path as
/// the old route and a further k-shortest as the new route, so that the
/// update mixes forward and backward segments (triggering segmentation).
struct DetourPaths {
  net::Path old_path;
  net::Path new_path;
};
DetourPaths long_detour_paths(const net::Graph& g);

}  // namespace p4u::harness
