#include "harness/demo_scenarios.hpp"

#include <map>

#include "net/topologies.hpp"

namespace p4u::harness {

Fig2Result run_fig2_demo(SystemKind system, std::uint64_t seed) {
  net::NamedTopology topo = net::fig2_topology();
  TestBedParams params;
  params.system = system;
  params.seed = seed;
  params.ctrl_latency_model = CtrlLatencyModel::kFixed;
  params.fixed_ctrl_latency = sim::milliseconds(5);
  params.trace_enabled = false;
  params.measure_prep_wallclock = false;  // deterministic demo metrics
  TestBed bed(topo.graph, params);

  net::Flow flow;
  flow.ingress = 0;
  flow.egress = 4;
  flow.id = net::flow_id_of(0, 4);
  flow.size = 1.0;
  const net::Path config_a{0, 1, 2, 3, 4};
  const net::Path config_b{0, 1, 2, 4};
  const net::Path config_c{0, 3, 1, 2, 4};
  bed.deploy_flow(flow, config_a);

  Fig2Result result;
  std::map<std::uint32_t, int> seen_v1, seen_v4;
  p4rt::FabricCallbacks recorder;
  recorder.data_arrival = [&](net::NodeId n, const p4rt::DataHeader& d) {
    if (n == 1) {
      result.arrivals_v1.push_back({bed.simulator().now(), d.seq});
      ++seen_v1[d.seq];
    }
  };
  recorder.delivered = [&](net::NodeId n, const p4rt::DataHeader& d) {
    if (n == 4) {
      result.arrivals_v4.push_back({bed.simulator().now(), d.seq});
      ++seen_v4[d.seq];
    }
  };
  recorder.ttl_expired = [&](net::NodeId, const p4rt::DataHeader&) {
    ++result.ttl_drops;
  };
  const p4rt::ObserverHandle recorder_handle =
      bed.fabric().subscribe(&recorder);

  // 125 pps, TTL 64, starting at t = 10 s for 0.6 s (§4.1's window).
  result.packets_sent = 75;
  bed.simulator().schedule_at(sim::seconds(10) - sim::milliseconds(100),
                              [&bed, &flow]() {
                                bed.start_traffic(flow.id, 0, 125.0, 75, 64);
                              });

  // t = 10.10 s: config (b) issued but its control messages are delayed by
  // 400 ms; the controller is oblivious and believes (b) applied.
  bed.simulator().schedule_at(
      sim::seconds(10) + sim::milliseconds(100), [&bed, &flow, &config_b]() {
        bed.channel().set_extra_outbound_delay(sim::milliseconds(400));
        bed.issue_update_now(flow.id, config_b);
        bed.channel().set_extra_outbound_delay(0);
        bed.force_belief(flow.id, config_b);
      });

  // t = 10.15 s: config (c) issued on top of the believed (b).
  bed.schedule_update_at(sim::seconds(10) + sim::milliseconds(150), flow.id,
                         config_c);

  bed.run(sim::seconds(30));

  for (const auto& [seq, n] : seen_v1) {
    if (n > 1) ++result.duplicates_at_v1;
  }
  result.unique_at_v4 = static_cast<std::uint32_t>(seen_v4.size());
  result.loop_observations = bed.monitor().violations().loops;
  result.alarms = bed.flow_db().total_alarms();
  bed.collect_metrics();
  result.metrics.merge_from(bed.metrics());
  return result;
}

Fig4Result run_fig4_demo(SystemKind system, std::uint64_t seed) {
  net::NamedTopology topo = net::fig4_topology();
  TestBedParams params;
  params.system = system;
  params.seed = seed;
  params.ctrl_latency_model = CtrlLatencyModel::kFixed;
  params.fixed_ctrl_latency = sim::milliseconds(20);
  params.trace_enabled = false;
  params.measure_prep_wallclock = false;  // deterministic demo metrics
  TestBed bed(topo.graph, params);

  net::Flow flow;
  flow.ingress = 0;
  flow.egress = 5;
  flow.id = net::flow_id_of(0, 5);
  flow.size = 1.0;
  const net::Path v1_path{0, 1, 2, 3, 4, 5};
  // U2: "complex" — five segments, two of them backward, every rule on the
  // path changes; ez-Segway's dependency resolution makes it drag.
  const net::Path u2_path{0, 2, 1, 4, 3, 5};
  const net::Path u3_path{0, 2, 5};  // simple final configuration
  bed.deploy_flow(flow, v1_path);

  const sim::Time u2_at = sim::milliseconds(10);
  const sim::Time u3_at = sim::milliseconds(20);
  bed.schedule_update_at(u2_at, flow.id, u2_path);
  bed.schedule_update_at(u3_at, flow.id, u3_path);
  bed.run(sim::seconds(60));

  Fig4Result result;
  const auto* rec = bed.flow_db().record(flow.id, 3);
  if (rec != nullptr && rec->state == control::UpdateState::kCompleted) {
    result.u3_completed = true;
    // Completion measured from when U3 was *wanted* (u3_at), which charges
    // ez-Segway for the waiting it chooses to do.
    result.u3_completion_ms = sim::to_ms(rec->completed_at - u3_at);
  }
  result.violations = bed.monitor().violations();
  bed.collect_metrics();
  result.metrics.merge_from(bed.metrics());
  return result;
}

}  // namespace p4u::harness
