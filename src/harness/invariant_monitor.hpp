// InvariantMonitor: the oracle that checks the paper's three consistency
// properties (§5) against the *actual* data-plane state after every rule
// change:
//   - loop freedom: the per-flow forwarding graph is acyclic,
//   - blackhole freedom: walking from the flow ingress always reaches a
//     rule, ending at local delivery,
//   - congestion freedom: per directed link, the flow size bounds of rules
//     routed over it never exceed capacity.
// The systems under test never see the monitor — it reads switch tables the
// way an omniscient observer would.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "net/flow.hpp"
#include "p4rt/fabric.hpp"

namespace p4u::harness {

class InvariantMonitor {
 public:
  struct Violations {
    std::uint64_t loops = 0;
    std::uint64_t blackholes = 0;
    std::uint64_t capacity = 0;
    [[nodiscard]] std::uint64_t total() const {
      return loops + blackholes + capacity;
    }
  };

  explicit InvariantMonitor(p4rt::Fabric& fabric, bool check_capacity = false)
      : fabric_(&fabric), check_capacity_(check_capacity) {}

  /// Declares a flow the monitor should watch (its ingress anchors the
  /// blackhole walk; its size feeds the capacity sums).
  void watch_flow(const net::Flow& f) { flows_[f.id] = f; }

  /// Hooks the fabric's on_rule_installed callback (chains any existing
  /// hook). Call once after all other hooks are set.
  void attach();

  /// Runs all checks for one flow right now; increments counters and logs
  /// trace entries for anything found.
  void check_flow(net::FlowId flow);

  /// Runs all checks for all watched flows.
  void check_all();

  [[nodiscard]] const Violations& violations() const { return violations_; }
  [[nodiscard]] const std::vector<std::string>& findings() const {
    return findings_;
  }

  // Direct predicates (used by tests).
  [[nodiscard]] bool has_loop(net::FlowId flow) const;
  [[nodiscard]] bool has_blackhole(net::FlowId flow) const;
  [[nodiscard]] std::vector<std::string> capacity_overloads() const;

 private:
  /// Watched flow ids in ascending order. All iteration over the watched
  /// set goes through this so findings, trace entries, and float
  /// accumulations are independent of hash order.
  [[nodiscard]] std::vector<net::FlowId> watched_ids_sorted() const;

  p4rt::Fabric* fabric_;
  bool check_capacity_;
  std::unordered_map<net::FlowId, net::Flow> flows_;
  Violations violations_;
  std::vector<std::string> findings_;
};

}  // namespace p4u::harness
