// InvariantMonitor: the oracle that checks the paper's three consistency
// properties (§5) against the *actual* data-plane state after every rule
// change:
//   - loop freedom: the per-flow forwarding graph is acyclic,
//   - blackhole freedom: walking from the flow ingress always reaches a
//     rule, ending at local delivery,
//   - congestion freedom: per directed link, the flow size bounds of rules
//     routed over it never exceed capacity.
// The systems under test never see the monitor — it reads switch tables the
// way an omniscient observer would.
//
// Under a FaultPlan the oracle distinguishes *violations* (the update system
// broke an invariant) from *faulted walks* (the physical fault broke the
// path): a flow whose walk crossed a downed link or crashed switch is
// excused while the fault bites, and a broken walk counts as faulted, not as
// a blackhole violation. Loops are never excused — no fault creates one; the
// update logic does.
#pragma once

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/flow.hpp"
#include "p4rt/fabric.hpp"
#include "p4rt/fabric_observer.hpp"

namespace p4u::harness {

class InvariantMonitor : public p4rt::FabricObserver {
 public:
  struct Violations {
    std::uint64_t loops = 0;
    std::uint64_t blackholes = 0;
    std::uint64_t capacity = 0;
    /// Walks that broke because of a live fault (excused; not a violation).
    std::uint64_t faulted_walks = 0;
    [[nodiscard]] std::uint64_t total() const {
      return loops + blackholes + capacity;
    }
  };

  explicit InvariantMonitor(p4rt::Fabric& fabric, bool check_capacity = false)
      : fabric_(&fabric), check_capacity_(check_capacity) {}

  /// Declares a flow the monitor should watch (its ingress anchors the
  /// blackhole walk; its size feeds the capacity sums).
  void watch_flow(const net::Flow& f) { flows_[f.id] = f; }

  /// Subscribes to the fabric (rule installs trigger checks; fault events
  /// mark affected flows excused). Idempotent per monitor instance.
  void attach();

  /// Runs all checks for one flow right now; increments counters and logs
  /// trace entries for anything found.
  void check_flow(net::FlowId flow);

  /// Runs all checks for all watched flows.
  void check_all();

  [[nodiscard]] const Violations& violations() const { return violations_; }
  [[nodiscard]] const std::vector<std::string>& findings() const {
    return findings_;
  }

  /// Tops up "monitor.violation"{kind=loop|blackhole|capacity} plus
  /// "monitor.faulted_walks" to the current totals, so every run report
  /// attributes explorer/chaos failures per invariant without reading
  /// traces. Zero cells are exported too: a clean run visibly reports
  /// zeroes rather than omitting the family. Idempotent (top-up pattern,
  /// like FlowDb::export_outcomes).
  void export_violations(obs::MetricsRegistry& m) const;

  // Direct predicates (used by tests).
  [[nodiscard]] bool has_loop(net::FlowId flow) const;
  [[nodiscard]] bool has_blackhole(net::FlowId flow) const;
  [[nodiscard]] std::vector<std::string> capacity_overloads() const;

  // FabricObserver:
  void on_rule_installed(net::NodeId node, net::FlowId flow,
                         std::int32_t port) override;
  void on_link_state(net::LinkId link, net::NodeId a, net::NodeId b,
                     bool up) override;
  void on_switch_state(net::NodeId node, bool up) override;

 private:
  /// How a walk from the flow ingress along installed rules ends.
  enum class WalkEnd {
    kDelivered,  // reached a kLocalPort rule
    kBlackhole,  // reached a rule-less switch or a dangling port
    kLoop,       // revisited a node
    kFaulted,    // hit a crashed switch or a downed link
  };
  WalkEnd walk_flow(net::FlowId flow) const;

  /// The node sequence of the flow's current walk (pre-fault when called
  /// from a state-change notification, which fires before the fabric
  /// applies the effect).
  [[nodiscard]] std::vector<net::NodeId> walk_nodes(net::FlowId flow) const;

  /// Watched flow ids in ascending order. All iteration over the watched
  /// set goes through this so findings, trace entries, and float
  /// accumulations are independent of hash order.
  [[nodiscard]] std::vector<net::FlowId> watched_ids_sorted() const;

  p4rt::Fabric* fabric_;
  bool check_capacity_;
  std::unordered_map<net::FlowId, net::Flow> flows_;
  Violations violations_;
  std::vector<std::string> findings_;
  /// Flows whose path a live fault broke; cleared by the next clean walk.
  std::set<net::FlowId> excused_;
  p4rt::ObserverHandle handle_;
};

}  // namespace p4u::harness
