#include "harness/campaign.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "harness/demo_scenarios.hpp"
#include "harness/parallel_runner.hpp"
#include "obs/run_report.hpp"
#include "sim/schedule_strategy.hpp"
#include "sim/streaming_stats.hpp"

namespace p4u::harness {

namespace {
constexpr sim::Time kIssueAt = sim::milliseconds(10);
constexpr sim::Time kRunUntil = sim::seconds(300);

void harvest_bed(TestBed& bed, RunOutcome& out) {
  out.alarms += bed.flow_db().total_alarms();
  out.violations.loops += bed.monitor().violations().loops;
  out.violations.blackholes += bed.monitor().violations().blackholes;
  out.violations.capacity += bed.monitor().violations().capacity;
  out.violations.faulted_walks += bed.monitor().violations().faulted_walks;
  bed.collect_metrics();
  out.metrics.merge_from(bed.metrics());
}

/// Builds the spec's per-run strategy (if any) and points `params` at it.
/// The returned owner must outlive the TestBed built from `params`.
std::unique_ptr<sim::ScheduleStrategy> install_strategy(const RunSpec& spec,
                                                        TestBedParams& params,
                                                        std::uint64_t seed) {
  if (!spec.strategy_factory) return nullptr;
  std::unique_ptr<sim::ScheduleStrategy> strategy =
      spec.strategy_factory(seed);
  params.strategy = strategy.get();
  return strategy;
}

RunOutcome run_single_flow_job(const RunSpec& spec, std::uint64_t seed) {
  TestBedParams params = spec.bed;
  params.seed = seed;
  params.trace_enabled = false;  // large sweeps: skip trace allocation
  params.measure_prep_wallclock = false;  // keep the registry deterministic
  const auto strategy = install_strategy(spec, params, seed);
  TestBed bed(*spec.graph, params);
  // Pre-size the event pool from the spec: a single-flow update touches each
  // node a bounded number of times (service, UNM hops, installs, retries).
  bed.reserve_events(spec.graph->node_count() * 96 + 512);

  net::Flow f;
  f.ingress = spec.old_path.front();
  f.egress = spec.old_path.back();
  f.id = net::flow_id_of(f.ingress, f.egress);
  f.size = 1.0;
  bed.deploy_flow(f, spec.old_path);
  bed.schedule_update_at(kIssueAt, f.id, spec.new_path);
  bed.run(kRunUntil);

  RunOutcome out;
  const auto d = bed.flow_db().duration(f.id, 2);
  if (d) out.sample = sim::to_ms(*d);
  harvest_bed(bed, out);
  return out;
}

RunOutcome run_multi_flow_job(const RunSpec& spec, std::uint64_t seed) {
  sim::Rng traffic_rng(seed ^ 0x7AFF1Cull);
  const std::vector<TrafficFlow> flows =
      gravity_multiflow(*spec.graph, traffic_rng, spec.traffic);

  TestBedParams params = spec.bed;
  params.seed = seed;
  params.trace_enabled = false;
  params.measure_prep_wallclock = false;
  params.monitor_capacity = params.monitor_capacity || params.congestion_mode;
  const auto strategy = install_strategy(spec, params, seed);
  TestBed bed(*spec.graph, params);
  // Event volume scales with both the topology and the flow batch; the
  // estimate only pre-sizes slabs, so overshoot costs memory, not time.
  bed.reserve_events(spec.graph->node_count() * 64 + flows.size() * 192 +
                     512);

  std::vector<std::pair<net::FlowId, net::Path>> batch;
  for (const TrafficFlow& tf : flows) {
    bed.deploy_flow(tf.flow, tf.old_path);
    batch.emplace_back(tf.flow.id, tf.new_path);
  }
  bed.schedule_batch_at(kIssueAt, std::move(batch));
  bed.run(kRunUntil);

  // Sample: completion time of the last flow update in the batch.
  RunOutcome out;
  bool all_done = true;
  sim::Time last = 0;
  for (const TrafficFlow& tf : flows) {
    const auto* rec = bed.flow_db().record(tf.flow.id, 2);
    if (rec == nullptr || rec->state != control::UpdateState::kCompleted) {
      all_done = false;
      break;
    }
    last = std::max(last, rec->completed_at);
  }
  if (all_done) out.sample = sim::to_ms(last - kIssueAt);
  harvest_bed(bed, out);
  return out;
}

RunOutcome run_chaos_job(const RunSpec& spec, std::uint64_t seed) {
  sim::Rng traffic_rng(seed ^ 0x7AFF1Cull);
  const std::vector<TrafficFlow> flows =
      gravity_multiflow(*spec.graph, traffic_rng, spec.traffic);

  TestBedParams params = spec.bed;
  params.seed = seed;
  params.trace_enabled = false;
  params.measure_prep_wallclock = false;
  // Per-seed chaos: one link outage and one switch crash, drawn from a
  // fault-only stream so the draw never perturbs the traffic model.
  const net::Graph& g = *spec.graph;
  sim::Rng chaos_rng(seed ^ 0xC4A05ull);
  const sim::Duration span =
      spec.chaos_to > spec.chaos_from ? spec.chaos_to - spec.chaos_from : 1;
  const auto draw_at = [&]() {
    return spec.chaos_from + static_cast<sim::Time>(chaos_rng.uniform(
                                 static_cast<std::uint64_t>(span)));
  };
  const auto link =
      static_cast<net::LinkId>(chaos_rng.uniform(g.link_count()));
  const net::Link& l = g.link(link);
  params.fault_plan.link_down_for(draw_at(), l.a, l.b, spec.chaos_outage);
  const auto victim =
      static_cast<net::NodeId>(chaos_rng.uniform(g.node_count()));
  params.fault_plan.switch_crash_for(draw_at(), victim, spec.chaos_outage);

  const auto strategy = install_strategy(spec, params, seed);
  TestBed bed(g, params);
  bed.reserve_events(g.node_count() * 64 + flows.size() * 256 + 512);

  std::vector<std::pair<net::FlowId, net::Path>> batch;
  for (const TrafficFlow& tf : flows) {
    bed.deploy_flow(tf.flow, tf.old_path);
    batch.emplace_back(tf.flow.id, tf.new_path);
  }
  bed.schedule_batch_at(kIssueAt, std::move(batch));
  bed.run(kRunUntil);

  // Liveness: every flow's latest update must have settled (Completed,
  // RolledBack, or Abandoned). A run with anything still kPending counts as
  // incomplete; the sample reports how many updates fully completed.
  RunOutcome out;
  if (bed.flow_db().all_terminal()) {
    double completed = 0.0;
    for (const TrafficFlow& tf : flows) {
      const auto& hist = bed.flow_db().history(tf.flow.id);
      if (!hist.empty() &&
          hist.back().outcome == control::UpdateOutcome::kCompleted) {
        completed += 1.0;
      }
    }
    out.sample = completed;
  }
  harvest_bed(bed, out);
  return out;
}

RunOutcome run_scale_job(const RunSpec& spec, std::uint64_t seed) {
  const net::Graph& g = *spec.graph;

  // Pinned endpoint pairs: drawn from scale_endpoints (or every node) with
  // a pair-only rng stream, each resolved once to (shortest, 2nd-shortest).
  // Flows are then dealt round-robin over the pairs, so path precompute is
  // O(scale_pairs) while per-flow state is O(scale_flows).
  std::vector<net::NodeId> endpoints = spec.scale_endpoints;
  if (endpoints.empty()) {
    endpoints.reserve(g.node_count());
    for (std::size_t n = 0; n < g.node_count(); ++n) {
      endpoints.push_back(static_cast<net::NodeId>(n));
    }
  }
  struct PairPaths {
    net::NodeId src;
    net::NodeId dst;
    net::Path old_path;
    net::Path new_path;
  };
  sim::Rng pair_rng(seed ^ 0x5CA1Eull);
  std::vector<PairPaths> pairs;
  pairs.reserve(spec.scale_pairs);
  // Bounded rejection: pairs whose 2nd-shortest path does not exist are
  // re-rolled, like gravity_multiflow does for its per-node destinations.
  for (int attempts = 0;
       pairs.size() < spec.scale_pairs &&
       attempts < static_cast<int>(spec.scale_pairs) * 8;
       ++attempts) {
    const net::NodeId src =
        endpoints[pair_rng.uniform(endpoints.size())];
    const net::NodeId dst =
        endpoints[pair_rng.uniform(endpoints.size())];
    if (src == dst) continue;
    auto ksp = net::k_shortest_paths(g, src, dst, 2, net::Metric::kHops);
    if (ksp.size() < 2) continue;
    pairs.push_back({src, dst, std::move(ksp[0]), std::move(ksp[1])});
  }
  if (pairs.empty()) {
    throw std::logic_error("run_scale_job: no endpoint pair has two paths");
  }

  TestBedParams params = spec.bed;
  params.seed = seed;
  params.trace_enabled = false;
  params.measure_prep_wallclock = false;
  params.expected_flows = spec.scale_flows;
  // Per-switch residency: total hop-slots / switches, with headroom. The
  // hint only pre-sizes pools; undershoot costs a few grows, not wrongness.
  params.expected_flows_per_switch =
      spec.scale_flows * 12 / std::max<std::size_t>(g.node_count(), 1);
  const auto strategy = install_strategy(spec, params, seed);
  TestBed bed(g, params);
  // The event volume is dominated by the updated subset, not residency:
  // deployment is instant bring-up, no events.
  bed.reserve_events(g.node_count() * 64 + spec.scale_update_flows * 192 +
                     512);

  // Synthetic unique ids: splitmix64 is a bijection on uint64, so a
  // million sequential indices give a million distinct FlowIds without
  // storing a dedup set.
  const auto synthetic_id = [](std::uint64_t i) {
    std::uint64_t state = i + 0x9E3779B97F4A7C15ull;
    return sim::splitmix64(state);
  };

  const std::size_t n_update =
      std::min(spec.scale_update_flows, spec.scale_flows);
  std::vector<std::pair<net::FlowId, net::Path>> batch;
  batch.reserve(n_update);
  for (std::size_t i = 0; i < spec.scale_flows; ++i) {
    const PairPaths& pp = pairs[i % pairs.size()];
    net::Flow f;
    f.id = synthetic_id(i);
    f.ingress = pp.src;
    f.egress = pp.dst;
    f.size = 1.0;
    const bool updated = i < n_update;
    // Only the updated prefix is monitor-watched: the monitor's per-flow
    // bookkeeping stays O(update_flows) under a million resident flows.
    bed.deploy_flow(f, pp.old_path, /*watch=*/updated);
    if (updated) batch.emplace_back(f.id, pp.new_path);
  }
  bed.schedule_batch_at(kIssueAt, std::move(batch));
  bed.run(kRunUntil);

  // Sample: completion time of the last updated flow (the resident
  // background flows never change, they only stress the state layer).
  RunOutcome out;
  bool all_done = true;
  sim::Time last = 0;
  for (std::size_t i = 0; i < n_update; ++i) {
    const auto* rec = bed.flow_db().record(synthetic_id(i), 2);
    if (rec == nullptr || rec->state != control::UpdateState::kCompleted) {
      all_done = false;
      break;
    }
    last = std::max(last, rec->completed_at);
  }
  if (all_done) out.sample = sim::to_ms(last - kIssueAt);
  harvest_bed(bed, out);
  return out;
}

RunOutcome run_churn_job(const RunSpec& spec, std::uint64_t seed) {
  const net::Graph& g = *spec.graph;
  // Rolled before the bed exists: every system replays the identical
  // request stream for this seed.
  const ChurnWorkload wl = make_churn_workload(g, seed, spec.churn);

  TestBedParams params = spec.bed;
  params.seed = seed;
  params.trace_enabled = false;
  params.measure_prep_wallclock = false;
  const auto strategy = install_strategy(spec, params, seed);
  TestBed bed(g, params);
  bed.reserve_events(g.node_count() * 64 + wl.events.size() * 256 + 1024);

  install_churn(bed, wl);
  bed.run(kRunUntil);

  RunOutcome out;
  const control::FlowDb& db = bed.flow_db();

  // Completion latency (virtual submit -> settle) across every settled
  // request: fixed-memory P2 tails, however long the stream ran.
  sim::StreamingStats lat({50.0, 99.0, 99.9});
  std::uint64_t terminal = 0;
  sim::Time last_finish = 0;
  for (const control::RequestRecord& r : db.requests()) {
    if (!control::is_terminal(r.state)) continue;
    ++terminal;
    lat.add(sim::to_ms(r.finished_at - r.submitted_at));
    last_finish = std::max(last_finish, r.finished_at);
  }

  // Liveness gate + sample: a run only counts when every request reached a
  // terminal state; the sample is controller throughput in settled
  // requests per virtual second, first arrival to last settle.
  if (db.all_requests_terminal() && terminal > 0) {
    const sim::Time span_from = spec.churn.start;
    const sim::Time span_to = std::max(last_finish, span_from + 1);
    out.sample = static_cast<double>(terminal) /
                 (static_cast<double>(span_to - span_from) /
                  static_cast<double>(sim::kSecond));
  }

  // Per-run scalars (tails, queue peaks) become one histogram observation
  // each: the cross-seed campaign merge then reports count/mean/min/max
  // (a gauge would keep only the last-merged run's value).
  obs::MetricsRegistry& m = bed.metrics();
  if (!lat.empty()) {
    m.histogram("churn.latency_p50_ms").observe(lat.quantile(50.0));
    m.histogram("churn.latency_p99_ms").observe(lat.quantile(99.0));
    m.histogram("churn.latency_p999_ms").observe(lat.quantile(99.9));
    m.histogram("churn.latency_mean_ms").observe(lat.mean());
  }
  static const std::vector<double> depth_buckets = {
      0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  control::AdmissionQueue& q = bed.system().admission();
  m.histogram("churn.queue_peak", {}, depth_buckets)
      .observe(static_cast<double>(q.queued_peak()));
  m.histogram("churn.inflight_peak", {}, depth_buckets)
      .observe(static_cast<double>(q.inflight_peak()));
  m.counter("churn.dispatched").inc(q.dispatched_total());
  m.counter("churn.coalesced").inc(q.coalesced_total());
  m.counter("churn.refused").inc(q.refused_total());
  db.export_requests(m);
  harvest_bed(bed, out);
  return out;
}

RunOutcome run_fig2_job(const RunSpec& spec, std::uint64_t seed) {
  Fig2Result r = run_fig2_demo(spec.bed.system, seed);
  RunOutcome out;
  out.sample = static_cast<double>(r.unique_at_v4);
  out.alarms = r.alarms;
  out.violations.loops = r.loop_observations;
  out.metrics = std::move(r.metrics);
  return out;
}

RunOutcome run_fig4_job(const RunSpec& spec, std::uint64_t seed) {
  Fig4Result r = run_fig4_demo(spec.bed.system, seed);
  RunOutcome out;
  if (r.u3_completed) out.sample = r.u3_completion_ms;
  out.violations = r.violations;
  out.metrics = std::move(r.metrics);
  return out;
}

}  // namespace

const char* to_string(ScenarioFamily f) {
  switch (f) {
    case ScenarioFamily::kSingleFlow: return "single-flow";
    case ScenarioFamily::kMultiFlow: return "multi-flow";
    case ScenarioFamily::kFig2Inconsistency: return "fig2-inconsistency";
    case ScenarioFamily::kFig4FastForward: return "fig4-fast-forward";
    case ScenarioFamily::kChaos: return "chaos";
    case ScenarioFamily::kScale: return "scale";
    case ScenarioFamily::kChurn: return "churn";
  }
  return "?";
}

RunOutcome execute_run(const RunSpec& spec, int run_index) {
  const std::uint64_t seed =
      spec.base_seed + static_cast<std::uint64_t>(run_index);
  switch (spec.family) {
    case ScenarioFamily::kSingleFlow: return run_single_flow_job(spec, seed);
    case ScenarioFamily::kMultiFlow: return run_multi_flow_job(spec, seed);
    case ScenarioFamily::kFig2Inconsistency: return run_fig2_job(spec, seed);
    case ScenarioFamily::kFig4FastForward: return run_fig4_job(spec, seed);
    case ScenarioFamily::kChaos: return run_chaos_job(spec, seed);
    case ScenarioFamily::kScale: return run_scale_job(spec, seed);
    case ScenarioFamily::kChurn: return run_churn_job(spec, seed);
  }
  throw std::logic_error("execute_run: unknown scenario family");
}

RunSpec& Campaign::add(RunSpec spec) {
  if (spec.runs < 0) throw std::invalid_argument("Campaign: negative runs");
  const bool needs_graph = spec.family == ScenarioFamily::kSingleFlow ||
                           spec.family == ScenarioFamily::kMultiFlow ||
                           spec.family == ScenarioFamily::kChaos ||
                           spec.family == ScenarioFamily::kScale ||
                           spec.family == ScenarioFamily::kChurn;
  if (needs_graph && spec.graph == nullptr) {
    throw std::invalid_argument("Campaign: spec '" + spec.slug +
                                "' has no topology");
  }
  specs_.push_back(std::move(spec));
  return specs_.back();
}

std::size_t Campaign::total_runs() const {
  std::size_t n = 0;
  for (const RunSpec& s : specs_) n += static_cast<std::size_t>(s.runs);
  return n;
}

std::vector<SpecResult> Campaign::run(int jobs) const {
  // Expand specs into the flat job list, in spec-then-seed order. The
  // outcome of job i lands in slot i whatever thread ran it, so the merge
  // below never observes scheduling order.
  struct Job {
    std::size_t spec;
    int run;
  };
  std::vector<Job> expanded;
  expanded.reserve(total_runs());
  for (std::size_t s = 0; s < specs_.size(); ++s) {
    for (int r = 0; r < specs_[s].runs; ++r) expanded.push_back({s, r});
  }

  // Seeds x shards composition: a sharded job occupies bed.shards cores by
  // itself, so the worker count shrinks by the widest spec's shard count —
  // `--jobs 8` with 4-way sharded beds runs 2 jobs at a time, keeping the
  // core budget (and the machine) at the requested width.
  int max_shards = 1;
  for (const RunSpec& s : specs_) {
    max_shards = std::max(max_shards, s.bed.shards);
  }
  const int workers =
      std::max(1, resolve_jobs(jobs) / std::max(1, max_shards));

  std::vector<RunOutcome> outcomes =
      parallel_map_indexed(expanded.size(), workers, [&](std::size_t i) {
        return execute_run(specs_[expanded[i].spec], expanded[i].run);
      });

  // Merge on this thread, spec by spec in seed order: samples concatenate,
  // counters add, registries fold — deterministically.
  std::vector<SpecResult> results;
  results.reserve(specs_.size());
  std::size_t i = 0;
  for (const RunSpec& spec : specs_) {
    SpecResult sr;
    sr.slug = spec.slug;
    sr.sample_unit = spec.sample_unit;
    for (int r = 0; r < spec.runs; ++r, ++i) {
      RunOutcome& out = outcomes[i];
      if (out.sample) {
        sr.result.update_times_ms.add(*out.sample);
      } else {
        ++sr.result.incomplete_runs;
      }
      sr.result.alarms += out.alarms;
      sr.result.violations.loops += out.violations.loops;
      sr.result.violations.blackholes += out.violations.blackholes;
      sr.result.violations.capacity += out.violations.capacity;
      sr.result.violations.faulted_walks += out.violations.faulted_walks;
      sr.result.metrics.merge_from(out.metrics);
    }
    results.push_back(std::move(sr));
  }
  return results;
}

std::string write_campaign_report(
    const std::string& out_dir, const std::string& run_name,
    const std::vector<std::pair<std::string, std::string>>& meta,
    const std::vector<SpecResult>& results) {
  if (out_dir.empty()) return "";
  obs::RunReport rep(out_dir, run_name);
  for (const auto& [k, v] : meta) rep.set_meta(k, v);
  obs::MetricsRegistry merged;
  for (const SpecResult& sr : results) merged.merge_from(sr.result.metrics);
  rep.add_metrics(merged);
  for (const SpecResult& sr : results) {
    rep.add_samples(sr.slug, sr.result.update_times_ms, sr.sample_unit);
  }
  return rep.write();
}

}  // namespace p4u::harness
