// TestBed: one fully wired simulation run — topology, fabric, one pipeline
// per switch for the system under test, control channel, controller, and
// the invariant monitor. Scenarios (single-flow, multi-flow, the §4 demos)
// drive a TestBed; campaigns (harness/campaign.hpp) run many seeded
// TestBeds and collect stats.
//
// The system under test is built by the SystemFactory registry
// (harness/system_factory.hpp): the TestBed drives it exclusively through
// the SystemAdapter interface and never switches over SystemKind.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "baselines/central_controller.hpp"
#include "baselines/ezsegway_controller.hpp"
#include "control/dest_tree.hpp"
#include "core/p4update_controller.hpp"
#include "core/p4update_switch.hpp"
#include "harness/invariant_monitor.hpp"
#include "harness/system_factory.hpp"
#include "p4rt/control_channel.hpp"
#include "p4rt/fabric.hpp"
#include "sim/parallel_sim.hpp"

namespace p4u::harness {

class TestBed {
 public:
  TestBed(net::Graph graph, TestBedParams params);
  TestBed(const TestBed&) = delete;
  TestBed& operator=(const TestBed&) = delete;

  /// Deploys a flow's initial configuration (instant bring-up, version 1)
  /// and registers it with controller and monitor. Scale campaigns pass
  /// `watch = false` for the resident (never-updated) background flows:
  /// the monitor's per-flow bookkeeping is then bounded by the updated
  /// subset instead of the full million-flow population.
  void deploy_flow(const net::Flow& f, const net::Path& initial_path,
                   bool watch = true);

  /// Deploys a destination tree's initial configuration (P4Update only):
  /// every tree node gets a version-1 rule toward its parent, the root
  /// delivers locally. `f.egress` must equal the tree root.
  void deploy_tree(const net::Flow& f, const control::DestTree& tree);

  /// Schedules one flow update at virtual time `at`. Convenience over
  /// `submit`: the request goes through the system's admission queue with
  /// kind = kReroute; the ticket is not returned (callers that need it
  /// schedule their own event and call system().submit inside).
  void schedule_update_at(sim::Time at, net::FlowId flow, net::Path new_path);

  /// Issues one flow update right now (scenario hooks that fire from inside
  /// a scheduled event — e.g. the §4.1 demo's mid-run reconfiguration);
  /// returns the admission ticket.
  Ticket issue_update_now(net::FlowId flow, const net::Path& new_path);

  /// Submits one request right now through the admission queue (the
  /// request-level API; churn drivers use this with explicit kinds).
  Ticket submit(const UpdateRequest& req) { return adapter_->submit(req); }

  /// Schedules a batch of updates at `at` (multi-flow scenarios; ez-Segway
  /// computes its priorities once per batch).
  void schedule_batch_at(sim::Time at,
                         std::vector<std::pair<net::FlowId, net::Path>> batch);

  /// Starts a constant-rate packet stream for Fig. 2-style observations.
  void start_traffic(net::FlowId flow, net::NodeId ingress, double pps,
                     std::uint32_t n_packets, std::int32_t ttl = 64);

  /// Runs the simulation until `until` or until idle. On the sharded
  /// engine this drives the conservative window loop and sweeps the
  /// invariant monitor at every multiple of `shard_check_interval`.
  void run(sim::Time until = sim::seconds(120));

  /// True when this bed runs on the sharded engine (params.shards >= 1 and
  /// no ScheduleStrategy forced the legacy fallback).
  [[nodiscard]] bool sharded() const noexcept { return sharded_ != nullptr; }
  [[nodiscard]] sim::ShardedSimulator* shard_engine() noexcept {
    return sharded_.get();
  }

  /// Pre-sizes event storage (split across shards when sharded).
  void reserve_events(std::size_t n);

  /// Writes the K-dependent execution stats — sim.shards, per-shard
  /// sim.shard_events, and the sim.pending_peak heap high-water mark —
  /// into `reg`. Deliberately NOT the run registry: run reports must stay
  /// byte-identical across shard counts, so campaigns export these into a
  /// side report (bench/par's BENCH_par.json).
  void export_shard_stats(obs::MetricsRegistry& reg) const;

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] p4rt::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] p4rt::ControlChannel& channel() { return *channel_; }

  /// The run's metrics registry (owned by the fabric; pipelines and the
  /// controller write into it live).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return fabric_->metrics(); }

  /// Flushes end-of-run state into the registry: per-switch UIB register
  /// access counters and pipeline totals that are kept as plain members
  /// during the run. Idempotent (counters are topped up to the current
  /// totals), so experiments can call it right before harvesting.
  void collect_metrics();

  /// Scenario fault injection: makes the controller *believe* the flow is
  /// installed on `path` even though the data plane may disagree — the
  /// inconsistent-view failure mode of [69, 71] driving §4.1.
  void force_belief(net::FlowId flow, net::Path path);
  [[nodiscard]] const net::Graph& graph() const { return graph_; }
  [[nodiscard]] InvariantMonitor& monitor() { return *monitor_; }
  [[nodiscard]] const control::FlowDb& flow_db() const;
  [[nodiscard]] sim::Trace& trace() { return fabric_->trace(); }

  /// The system under test, behind the uniform adapter interface.
  [[nodiscard]] SystemAdapter& system() { return *adapter_; }

  // Typed accessors for tests/demos that poke one concrete system; they
  // throw std::logic_error when the bed runs a different system.
  [[nodiscard]] core::P4UpdateController& p4update();
  [[nodiscard]] baseline::EzSegwayController& ezsegway();
  [[nodiscard]] baseline::CentralController& central();
  [[nodiscard]] core::P4UpdateSwitch& p4update_switch(net::NodeId n);

  [[nodiscard]] const TestBedParams& params() const { return params_; }

 private:
  net::Graph graph_;
  TestBedParams params_;
  std::vector<sim::Duration> ctrl_latencies_;
  net::ShardPlan shard_plan_;          // empty when running the legacy engine
  std::unique_ptr<sim::ShardedSimulator> sharded_;  // null = legacy engine
  std::unique_ptr<sim::Simulator> own_sim_;         // null when sharded
  sim::Simulator& sim_;  // own_sim_ or the sharded engine's shard 0
  std::unique_ptr<p4rt::Fabric> fabric_;
  std::unique_ptr<p4rt::ControlChannel> channel_;
  std::unique_ptr<InvariantMonitor> monitor_;
  std::unique_ptr<SystemAdapter> adapter_;
};

}  // namespace p4u::harness
