// TestBed: one fully wired simulation run — topology, fabric, one pipeline
// per switch for the system under test, control channel, controller, and
// the invariant monitor. Scenarios (single-flow, multi-flow, the §4 demos)
// drive a TestBed; experiments run many seeded TestBeds and collect stats.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "baselines/central_controller.hpp"
#include "baselines/central_switch.hpp"
#include "baselines/ezsegway_controller.hpp"
#include "baselines/ezsegway_switch.hpp"
#include "core/p4update_controller.hpp"
#include "core/p4update_switch.hpp"
#include "harness/invariant_monitor.hpp"
#include "p4rt/control_channel.hpp"
#include "p4rt/fabric.hpp"

namespace p4u::harness {

enum class SystemKind {
  kP4Update,
  kEzSegway,
  kCentral,
};

const char* to_string(SystemKind k);

/// How controller <-> switch latency is derived.
enum class CtrlLatencyModel {
  kWanCentroid,     // shortest-path latency from the centroid node (§9.1)
  kFattreeNormal,   // per-switch truncated normal (mean 4 ms, sd 3, min .5)
  kFixed,           // constant (synthetic topologies)
};

struct TestBedParams {
  SystemKind system = SystemKind::kP4Update;
  std::uint64_t seed = 1;
  p4rt::SwitchParams switch_params;
  /// Controller costs are asymmetric (§9.1, [40]): emitting a precomputed
  /// message is a cheap write, but each inbound notification is parsed,
  /// fed into the NIB, and may trigger dependency recomputation on the
  /// single-threaded (Python, in the paper) controller — that queuing +
  /// processing delay is what penalizes chatty centralized updates.
  sim::Duration ctrl_send_service = sim::microseconds(500);
  sim::Duration ctrl_recv_service = sim::milliseconds(5);
  CtrlLatencyModel ctrl_latency_model = CtrlLatencyModel::kFixed;
  /// For synthetic topologies the controller is "one designated node" (§5),
  /// i.e. reachable over the same kind of links: default = one 20 ms hop.
  sim::Duration fixed_ctrl_latency = sim::milliseconds(20);
  bool congestion_mode = false;
  bool monitor_capacity = false;
  // P4Update-specific knobs.
  std::optional<p4rt::UpdateType> force_type;
  bool allow_consecutive_dual = false;
  bool enable_retrigger = false;               // §11 failure recovery
  sim::Duration p4u_wait_timeout = sim::seconds(10);
  sim::Duration p4u_uim_watchdog = 0;          // 0 = watchdog off
  bool trace_enabled = true;
};

class TestBed {
 public:
  TestBed(net::Graph graph, TestBedParams params);
  TestBed(const TestBed&) = delete;
  TestBed& operator=(const TestBed&) = delete;

  /// Deploys a flow's initial configuration (instant bring-up, version 1)
  /// and registers it with controller and monitor.
  void deploy_flow(const net::Flow& f, const net::Path& initial_path);

  /// Deploys a destination tree's initial configuration (P4Update only):
  /// every tree node gets a version-1 rule toward its parent, the root
  /// delivers locally. `f.egress` must equal the tree root.
  void deploy_tree(const net::Flow& f, const control::DestTree& tree);

  /// Schedules one flow update at virtual time `at`.
  void schedule_update_at(sim::Time at, net::FlowId flow, net::Path new_path);

  /// Schedules a batch of updates at `at` (multi-flow scenarios; ez-Segway
  /// computes its priorities once per batch).
  void schedule_batch_at(sim::Time at,
                         std::vector<std::pair<net::FlowId, net::Path>> batch);

  /// Starts a constant-rate packet stream for Fig. 2-style observations.
  void start_traffic(net::FlowId flow, net::NodeId ingress, double pps,
                     std::uint32_t n_packets, std::int32_t ttl = 64);

  /// Runs the simulation until `until` or until idle.
  void run(sim::Time until = sim::seconds(120));

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] p4rt::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] p4rt::ControlChannel& channel() { return *channel_; }

  /// The run's metrics registry (owned by the fabric; pipelines and the
  /// controller write into it live).
  [[nodiscard]] obs::MetricsRegistry& metrics() { return fabric_->metrics(); }

  /// Flushes end-of-run state into the registry: per-switch UIB register
  /// access counters and pipeline totals that are kept as plain members
  /// during the run. Idempotent (counters are topped up to the current
  /// totals), so experiments can call it right before harvesting.
  void collect_metrics();

  /// Scenario fault injection: makes the controller *believe* the flow is
  /// installed on `path` even though the data plane may disagree — the
  /// inconsistent-view failure mode of [69, 71] driving §4.1.
  void force_belief(net::FlowId flow, net::Path path);
  [[nodiscard]] const net::Graph& graph() const { return graph_; }
  [[nodiscard]] InvariantMonitor& monitor() { return *monitor_; }
  [[nodiscard]] const control::FlowDb& flow_db() const;
  [[nodiscard]] sim::Trace& trace() { return fabric_->trace(); }

  [[nodiscard]] core::P4UpdateController& p4update() { return *p4u_ctrl_; }
  [[nodiscard]] baseline::EzSegwayController& ezsegway() { return *ez_ctrl_; }
  [[nodiscard]] baseline::CentralController& central() { return *central_ctrl_; }
  [[nodiscard]] core::P4UpdateSwitch& p4update_switch(net::NodeId n) {
    return *p4u_switches_.at(static_cast<std::size_t>(n));
  }

  [[nodiscard]] const TestBedParams& params() const { return params_; }

 private:
  net::Graph graph_;
  TestBedParams params_;
  sim::Simulator sim_;
  std::unique_ptr<p4rt::Fabric> fabric_;
  std::unique_ptr<p4rt::ControlChannel> channel_;
  std::unique_ptr<InvariantMonitor> monitor_;
  // Exactly one family below is populated, per params_.system.
  std::vector<std::unique_ptr<core::P4UpdateSwitch>> p4u_switches_;
  std::vector<std::unique_ptr<baseline::EzSegwaySwitch>> ez_switches_;
  std::vector<std::unique_ptr<baseline::CentralSwitch>> central_switches_;
  std::unique_ptr<core::P4UpdateController> p4u_ctrl_;
  std::unique_ptr<baseline::EzSegwayController> ez_ctrl_;
  std::unique_ptr<baseline::CentralController> central_ctrl_;
};

}  // namespace p4u::harness
