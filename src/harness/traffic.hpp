// Workload generation for the multi-flow scenarios (§9.1): every node picks
// a uniform-random destination; the old path is the shortest path and the
// new path the 2nd-shortest; flow sizes follow Roughan's gravity model [66],
// scaled so the busiest directed link sits near capacity under both the old
// and the new configuration (regenerated if infeasible, as in the paper).
#pragma once

#include <vector>

#include "net/fattree.hpp"
#include "net/flow.hpp"
#include "net/paths.hpp"
#include "sim/random.hpp"

namespace p4u::harness {

struct TrafficFlow {
  net::Flow flow;
  net::Path old_path;
  net::Path new_path;
};

struct TrafficParams {
  double target_utilization = 0.9;  // busiest link load / capacity
  int max_retries = 50;
  net::Metric metric = net::Metric::kHops;
};

/// One flow per node (destination uniform at random, old = shortest,
/// new = 2nd shortest). Nodes whose 2nd-shortest path does not exist are
/// re-rolled; sizes come from the gravity model.
std::vector<TrafficFlow> gravity_multiflow(const net::Graph& g, sim::Rng& rng,
                                           const TrafficParams& params = {});

/// Gravity-model sizes for an explicit set of (src, dst) pairs; exposed
/// separately for tests.
std::vector<double> gravity_sizes(std::size_t n_nodes,
                                  const std::vector<std::pair<net::NodeId, net::NodeId>>& pairs,
                                  sim::Rng& rng);

/// Max over directed links of (total flow size routed on it) / capacity,
/// for the given path assignment (old or new).
double peak_utilization(const net::Graph& g,
                        const std::vector<TrafficFlow>& flows, bool use_new);

}  // namespace p4u::harness
