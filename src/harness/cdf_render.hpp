// Text rendering of experiment results: CDF tables (the Fig. 4/7 series)
// and comparison summaries, printed by the bench binaries.
#pragma once

#include <string>
#include <vector>

#include "sim/stats.hpp"

namespace p4u::harness {

struct NamedSeries {
  std::string name;
  const sim::Samples* samples;
};

/// Renders an empirical CDF table: one row per sample rank, one column per
/// series (value at that cumulative fraction). Matches how the paper's CDF
/// plots would be digitized.
std::string render_cdf_table(const std::vector<NamedSeries>& series,
                             const std::string& value_label);

/// One-line-per-series summary with means and percentiles, plus pairwise
/// mean improvements of the first series over the others (the paper quotes
/// "-28.6% ... -39.1%" style numbers).
std::string render_comparison(const std::vector<NamedSeries>& series,
                              const std::string& value_label);

/// ASCII CDF plot (rough visual aid in bench output).
std::string render_ascii_cdf(const std::vector<NamedSeries>& series,
                             int width = 72, int height = 16);

}  // namespace p4u::harness
