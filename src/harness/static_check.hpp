// Harness bridge to the static update-plan verifier (DESIGN.md §12).
//
// Maps a (system, believed-old, actual-from, new-path) case onto the
// system's ordering discipline and runs the verifier, and defines the
// agreement semantics the mc cross-check and the property tests gate on:
//
//   - a static Safe verdict with a dynamic loop/blackhole observation is a
//     FALSE SAFE — the hard failure the whole subsystem exists to prevent;
//   - a static Unsafe verdict on an exhaustively explored cell that never
//     exhibited a loop or blackhole is an overclaim — also a failure;
//   - liveness-only dynamic failures (an update that stalls without ever
//     misforwarding, e.g. ez-Segway losing its one dependency message) are
//     out of the verifier's scope, so Safe agrees with them;
//   - Unknown never claims anything, so it agrees with every outcome.
#pragma once

#include <optional>

#include "harness/system_factory.hpp"
#include "verify/plan.hpp"
#include "verify/verifier.hpp"

namespace p4u::harness {

struct StaticCheckCase {
  SystemKind system = SystemKind::kP4Update;
  net::FlowId flow = 0;
  net::Path believed_old;
  /// Empty = the data plane matches the belief (truthful NIB).
  net::Path actual_from;
  net::Path new_path;
  std::size_t sl_node_budget = 5;                  // P4Update §7.5 knob
  std::optional<p4rt::UpdateType> force_type;      // P4Update ablation knob
};

/// Compiles the case to the system's discipline (P4Update -> verified
/// chain/dual, ez-Segway -> causal segments, Central -> round barriers).
verify::FlowPlan build_static_plan(const StaticCheckCase& c);

/// build_static_plan + verify_plan in one step.
verify::Verdict static_verdict(const StaticCheckCase& c,
                               const verify::VerifyOptions& opt = {});

/// What the dynamic layer (InvariantMonitor / Explorer) observed.
enum class DynamicOutcome { kClean, kLoopOrBlackhole, kLivenessOnly };

/// Classifies an explorer failure string ("forwarding loop ...",
/// "blackhole ...", "liveness: ...") or a clean pass.
DynamicOutcome classify_dynamic(bool any_failure,
                                const std::string& failure_text);

/// The agreement gate described above.
bool verdicts_agree(const verify::Verdict& v, DynamicOutcome dynamic);

}  // namespace p4u::harness
