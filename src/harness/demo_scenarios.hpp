// The two §4 motivation demos, reusable by integration tests and benches.
//
//  - Fig. 2: out-of-order configuration deployment under an inconsistent
//    controller view. ez-Segway traps packets in the (v1, v2, v3) loop and
//    loses them to TTL expiry; P4Update's local verification keeps the data
//    plane consistent throughout.
//  - Fig. 4: fast-forward. A complex update U2 is in flight when the
//    simpler U3 arrives; P4Update jumps ahead while ez-Segway serializes.
#pragma once

#include <vector>

#include "harness/scenario.hpp"
#include "obs/metrics.hpp"
#include "sim/stats.hpp"

namespace p4u::harness {

struct PacketArrival {
  sim::Time at = 0;
  std::uint32_t seq = 0;
};

struct Fig2Result {
  std::vector<PacketArrival> arrivals_v1;  // every data arrival at v1
  std::vector<PacketArrival> arrivals_v4;  // deliveries at the egress v4
  std::uint32_t packets_sent = 0;
  std::uint32_t duplicates_at_v1 = 0;  // same seq seen more than once
  std::uint32_t unique_at_v4 = 0;
  std::uint32_t ttl_drops = 0;
  std::uint64_t loop_observations = 0;  // invariant monitor
  std::uint64_t alarms = 0;             // verification rejects (P4Update)
  obs::MetricsRegistry metrics;         // the run's full registry
};

/// Runs the §4.1 scenario: config (a) deployed; (b)'s control messages
/// delayed while the controller believes them applied; (c) issued on top.
/// 125 pps, TTL 64, traffic window around the update (§4.1).
Fig2Result run_fig2_demo(SystemKind system, std::uint64_t seed = 1);

struct Fig4Result {
  bool u3_completed = false;
  double u3_completion_ms = 0.0;  // from U3 issue to its UFM
  InvariantMonitor::Violations violations;
  obs::MetricsRegistry metrics;  // the run's full registry
};

/// Runs the §4.2 scenario: U2 (complex, straggler-delayed installs) is
/// in flight when U3 (simple) is issued; returns U3's completion time.
Fig4Result run_fig4_demo(SystemKind system, std::uint64_t seed);

}  // namespace p4u::harness
