#include "harness/cdf_render.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace p4u::harness {

std::string render_cdf_table(const std::vector<NamedSeries>& series,
                             const std::string& value_label) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << std::setprecision(1);
  os << std::setw(8) << "CDF";
  for (const auto& s : series) {
    os << std::setw(16) << (s.name + " [" + value_label + "]");
  }
  os << '\n';
  std::size_t n = 0;
  for (const auto& s : series) n = std::max(n, s.samples->count());
  for (std::size_t rank = 0; rank < n; ++rank) {
    const double q =
        100.0 * static_cast<double>(rank + 1) / static_cast<double>(n);
    os << std::setw(7) << q << '%';
    for (const auto& s : series) {
      if (s.samples->empty()) {
        os << std::setw(16) << "-";
      } else {
        os << std::setw(16) << s.samples->percentile(q);
      }
    }
    os << '\n';
  }
  return os.str();
}

std::string render_comparison(const std::vector<NamedSeries>& series,
                              const std::string& value_label) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os << std::setprecision(1);
  for (const auto& s : series) {
    os << "  " << std::setw(12) << s.name << ": ";
    if (s.samples->empty()) {
      os << "(no samples)\n";
      continue;
    }
    os << "mean=" << s.samples->mean() << " " << value_label
       << "  p50=" << s.samples->percentile(50)
       << "  p95=" << s.samples->percentile(95)
       << "  min=" << s.samples->min() << "  max=" << s.samples->max()
       << "  n=" << s.samples->count() << '\n';
  }
  if (series.size() > 1 && !series[0].samples->empty()) {
    const double base = series[0].samples->mean();
    for (std::size_t i = 1; i < series.size(); ++i) {
      if (series[i].samples->empty()) continue;
      const double other = series[i].samples->mean();
      const double delta = (base - other) / other * 100.0;
      os << "  " << series[0].name << " vs " << series[i].name << ": "
         << std::showpos << delta << "%" << std::noshowpos
         << " (negative = " << series[0].name << " faster)\n";
    }
  }
  return os.str();
}

std::string render_ascii_cdf(const std::vector<NamedSeries>& series,
                             int width, int height) {
  std::ostringstream os;
  double lo = 1e300, hi = -1e300;
  for (const auto& s : series) {
    if (s.samples->empty()) continue;
    lo = std::min(lo, s.samples->min());
    hi = std::max(hi, s.samples->max());
  }
  if (hi <= lo) return "(not enough data for plot)\n";
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  const char* marks = "*o+x#@";
  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto& s = *series[si].samples;
    if (s.empty()) continue;
    const auto& sorted = s.sorted();
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const double frac =
          static_cast<double>(i + 1) / static_cast<double>(sorted.size());
      const int col = static_cast<int>((sorted[i] - lo) / (hi - lo) *
                                       (width - 1));
      const int row = height - 1 - static_cast<int>(frac * (height - 1));
      grid[static_cast<std::size_t>(std::clamp(row, 0, height - 1))]
          [static_cast<std::size_t>(std::clamp(col, 0, width - 1))] =
              marks[si % 6];
    }
  }
  os << "  1.0 +" << std::string(static_cast<std::size_t>(width), '-') << '\n';
  for (const auto& row : grid) {
    os << "      |" << row << '\n';
  }
  os << "  0.0 +" << std::string(static_cast<std::size_t>(width), '-') << '\n';
  os.setf(std::ios::fixed);
  os << std::setprecision(1) << "       " << lo << " ... " << hi << '\n';
  for (std::size_t si = 0; si < series.size(); ++si) {
    os << "       [" << marks[si % 6] << "] " << series[si].name << '\n';
  }
  return os.str();
}

}  // namespace p4u::harness
