#include "harness/scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "control/labeling.hpp"

namespace p4u::harness {

namespace {

std::vector<sim::Duration> control_latencies(const net::Graph& g,
                                             const TestBedParams& p,
                                             sim::Rng& rng) {
  switch (p.ctrl_latency_model) {
    case CtrlLatencyModel::kWanCentroid:
      return p4rt::wan_control_latencies(g, net::centroid_node(g));
    case CtrlLatencyModel::kFattreeNormal: {
      std::vector<sim::Duration> out(g.node_count());
      for (auto& d : out) {
        d = sim::truncated_normal_ms(rng, 4.0, 3.0, 0.5);
      }
      return out;
    }
    case CtrlLatencyModel::kFixed:
      return std::vector<sim::Duration>(g.node_count(), p.fixed_ctrl_latency);
  }
  throw std::logic_error("unknown control latency model");
}

std::vector<sim::Duration> make_ctrl_latencies(const net::Graph& g,
                                               const TestBedParams& p) {
  sim::Rng latency_rng(p.seed ^ 0xC0117801ull);
  return control_latencies(g, p, latency_rng);
}

/// Sharded mode is requested by params.shards >= 1; a ScheduleStrategy
/// forces the transparent legacy fallback (strategies steer one global
/// ready set — PR-7 semantics the sharded engine does not reproduce).
bool wants_sharding(const TestBedParams& p) {
  return p.shards >= 1 && p.strategy == nullptr;
}

net::ShardPlan make_shard_plan(const net::Graph& g, const TestBedParams& p) {
  if (!wants_sharding(p)) return {};
  return net::partition_shards(g, p.shards);
}

std::unique_ptr<sim::ShardedSimulator> make_engine(
    const net::Graph& g, const TestBedParams& p, const net::ShardPlan& plan,
    const std::vector<sim::Duration>& ctrl_latency) {
  if (!wants_sharding(p)) return nullptr;
  // Conservative lookahead = the minimum latency of any channel that can
  // cross shards: cut links, plus the control channel to/from every switch
  // not co-located with the controller (shard 0).
  sim::Duration lookahead = plan.min_cut_latency;
  for (std::size_t i = 0; i < ctrl_latency.size(); ++i) {
    if (plan.shard_of[i] != 0) {
      lookahead = std::min(lookahead, ctrl_latency[i]);
    }
  }
  return std::make_unique<sim::ShardedSimulator>(
      plan.shards, g.node_count() + 1, lookahead);
}

}  // namespace

TestBed::TestBed(net::Graph graph, TestBedParams params)
    : graph_(std::move(graph)),
      params_(params),
      ctrl_latencies_(make_ctrl_latencies(graph_, params_)),
      shard_plan_(make_shard_plan(graph_, params_)),
      sharded_(make_engine(graph_, params_, shard_plan_, ctrl_latencies_)),
      own_sim_(sharded_ == nullptr ? std::make_unique<sim::Simulator>()
                                   : nullptr),
      sim_(sharded_ != nullptr ? sharded_->shard(0) : *own_sim_) {
  // The strategy goes in first: the Fabric constructor below already
  // schedules fault-plan events, and those must be tagged and steered like
  // everything else.
  sim_.set_strategy(params_.strategy);
  // Fail loudly on a mistyped fault schedule before anything is wired.
  params_.fault_plan.validate(graph_);
  fabric_ = std::make_unique<p4rt::Fabric>(sim_, graph_, params_.switch_params,
                                           params_.seed, params_.fault_plan);
  fabric_->trace().set_enabled(params_.trace_enabled);
  if (sharded_ != nullptr) {
    // Rejects fault plans / fault models / enabled traces with a clear
    // message; from here on events route to the shard owning their node.
    fabric_->attach_shards(*sharded_, shard_plan_);
  }

  channel_ = std::make_unique<p4rt::ControlChannel>(
      sim_, *fabric_, ctrl_latencies_, params_.ctrl_send_service);
  channel_->set_services(params_.ctrl_send_service, params_.ctrl_recv_service);

  adapter_ = SystemFactory::instance().create(
      params_.system,
      SystemContext{sim_, *fabric_, *channel_, graph_, params_});

  monitor_ = std::make_unique<InvariantMonitor>(*fabric_,
                                                params_.monitor_capacity);
  if (sharded_ == nullptr) {
    monitor_->attach();
  }
  // Sharded: the monitor is not an observer (its callbacks would fire from
  // every worker thread and walk global state mid-window). TestBed::run
  // sweeps it between windows instead, at identical virtual times for
  // every shard count.
}

const control::FlowDb& TestBed::flow_db() const { return adapter_->flow_db(); }

core::P4UpdateController& TestBed::p4update() {
  auto* ctrl = adapter_->as_p4update();
  if (ctrl == nullptr) {
    throw std::logic_error("TestBed::p4update: bed runs " +
                           std::string(to_string(params_.system)));
  }
  return *ctrl;
}

baseline::EzSegwayController& TestBed::ezsegway() {
  auto* ctrl = adapter_->as_ezsegway();
  if (ctrl == nullptr) {
    throw std::logic_error("TestBed::ezsegway: bed runs " +
                           std::string(to_string(params_.system)));
  }
  return *ctrl;
}

baseline::CentralController& TestBed::central() {
  auto* ctrl = adapter_->as_central();
  if (ctrl == nullptr) {
    throw std::logic_error("TestBed::central: bed runs " +
                           std::string(to_string(params_.system)));
  }
  return *ctrl;
}

core::P4UpdateSwitch& TestBed::p4update_switch(net::NodeId n) {
  auto* sw = adapter_->p4update_switch(n);
  if (sw == nullptr) {
    throw std::logic_error("TestBed::p4update_switch: bed runs " +
                           std::string(to_string(params_.system)));
  }
  return *sw;
}

void TestBed::deploy_flow(const net::Flow& f, const net::Path& initial_path,
                          bool watch) {
  if (initial_path.front() != f.ingress || initial_path.back() != f.egress) {
    throw std::invalid_argument("deploy_flow: path does not match flow");
  }
  // Bring up the data plane: every on-path switch gets the version-1 state.
  for (std::size_t i = 0; i < initial_path.size(); ++i) {
    const net::NodeId n = initial_path[i];
    const auto dist = static_cast<p4rt::Distance>(initial_path.size() - 1 - i);
    const std::int32_t port =
        i + 1 == initial_path.size()
            ? p4rt::SwitchDevice::kLocalPort
            : graph_.port_of(n, initial_path[i + 1]);
    adapter_->bootstrap_flow_hop(fabric_->sw(n), f, dist, port);
  }
  adapter_->register_flow(f, initial_path);
  if (watch) monitor_->watch_flow(f);
}

void TestBed::deploy_tree(const net::Flow& f, const control::DestTree& tree) {
  auto* ctrl = adapter_->as_p4update();
  if (ctrl == nullptr) {
    throw std::logic_error("deploy_tree: destination trees are a P4Update "
                           "extension (§11)");
  }
  if (f.egress != tree.root) {
    throw std::invalid_argument("deploy_tree: flow egress must be the root");
  }
  for (const control::TreeNodeLabel& l : control::label_tree(graph_, tree)) {
    adapter_->bootstrap_flow_hop(fabric_->sw(l.node), f, l.depth,
                                 l.parent_port);
  }
  ctrl->register_tree(f);
  monitor_->watch_flow(f);
}

void TestBed::schedule_update_at(sim::Time at, net::FlowId flow,
                                 net::Path new_path) {
  // kScenario is opaque to the independence relation: issuing an update
  // reshapes controller state for the whole run.
  sim_.schedule_at(at, sim::EventTag{-1, sim::EventClass::kScenario, flow},
                   [this, flow, new_path = std::move(new_path)]() {
                     adapter_->submit(UpdateRequest{flow, new_path});
                   });
}

Ticket TestBed::issue_update_now(net::FlowId flow, const net::Path& new_path) {
  return adapter_->submit(UpdateRequest{flow, new_path});
}

void TestBed::schedule_batch_at(
    sim::Time at, std::vector<std::pair<net::FlowId, net::Path>> batch) {
  sim_.schedule_at(at, sim::EventTag{-1, sim::EventClass::kScenario, 0},
                   [this, batch = std::move(batch)]() {
                     std::vector<UpdateRequest> reqs;
                     reqs.reserve(batch.size());
                     for (const auto& [flow, path] : batch) {
                       reqs.push_back(UpdateRequest{flow, path});
                     }
                     adapter_->submit_batch(reqs);
                   });
}

void TestBed::start_traffic(net::FlowId flow, net::NodeId ingress, double pps,
                            std::uint32_t n_packets, std::int32_t ttl) {
  if (sharded_ != nullptr) {
    throw std::logic_error(
        "TestBed::start_traffic: traffic injection is not supported on the "
        "sharded engine (zero-delay cross-shard injects cannot respect the "
        "lookahead); run with shards = 0");
  }
  const auto gap =
      static_cast<sim::Duration>(static_cast<double>(sim::kSecond) / pps);
  for (std::uint32_t i = 0; i < n_packets; ++i) {
    p4rt::DataHeader d;
    d.flow = flow;
    d.seq = i;
    d.ttl = ttl;
    sim_.schedule_in(gap * static_cast<sim::Duration>(i + 1),
                     sim::EventTag{-1, sim::EventClass::kScenario, flow},
                     [this, ingress, d]() {
                       fabric_->inject(ingress, p4rt::Packet{d}, -1);
                     });
  }
}

void TestBed::force_belief(net::FlowId flow, net::Path path) {
  control::Nib& nib = adapter_->nib();
  nib.believe_path(flow, std::move(path));
  nib.view(flow).update_in_progress = false;
}

void TestBed::run(sim::Time until) {
  if (sharded_ == nullptr) {
    sim_.run(until);
    return;
  }
  sharded_->run(until, [this] { monitor_->check_all(); },
                params_.shard_check_interval);
  // End-of-run sweep: the final events may fall between checkpoints.
  monitor_->check_all();
}

void TestBed::reserve_events(std::size_t n) {
  if (sharded_ != nullptr) {
    sharded_->reserve(n);
    return;
  }
  sim_.reserve(n);
}

void TestBed::export_shard_stats(obs::MetricsRegistry& reg) const {
  const int k = sharded_ != nullptr ? sharded_->shards() : 1;
  reg.gauge("sim.shards").set(static_cast<double>(k));
  std::size_t peak = 0;
  for (int s = 0; s < k; ++s) {
    const sim::Simulator& shard =
        sharded_ != nullptr ? sharded_->shard(s) : sim_;
    reg.gauge("sim.shard_events", {{"shard", std::to_string(s)}})
        .set(static_cast<double>(shard.executed()));
    peak = std::max(peak, shard.pending_peak());
  }
  reg.gauge("sim.pending_peak").set(static_cast<double>(peak));
}

void TestBed::collect_metrics() {
  // Fold the per-shard registries into the run registry first (no-op and
  // idempotent when unsharded); everything below writes into the merged
  // registry on the caller's thread.
  fabric_->merge_shard_metrics();
  adapter_->collect_metrics(fabric_->metrics());
  adapter_->flow_db().export_outcomes(fabric_->metrics());
  monitor_->export_violations(fabric_->metrics());
}

}  // namespace p4u::harness
