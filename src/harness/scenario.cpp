#include "harness/scenario.hpp"

#include <stdexcept>
#include <utility>

namespace p4u::harness {

const char* to_string(SystemKind k) {
  switch (k) {
    case SystemKind::kP4Update: return "P4Update";
    case SystemKind::kEzSegway: return "ez-Segway";
    case SystemKind::kCentral: return "Central";
  }
  return "?";
}

namespace {

std::vector<sim::Duration> control_latencies(const net::Graph& g,
                                             const TestBedParams& p,
                                             sim::Rng& rng) {
  switch (p.ctrl_latency_model) {
    case CtrlLatencyModel::kWanCentroid:
      return p4rt::wan_control_latencies(g, net::centroid_node(g));
    case CtrlLatencyModel::kFattreeNormal: {
      std::vector<sim::Duration> out(g.node_count());
      for (auto& d : out) {
        d = sim::truncated_normal_ms(rng, 4.0, 3.0, 0.5);
      }
      return out;
    }
    case CtrlLatencyModel::kFixed:
      return std::vector<sim::Duration>(g.node_count(), p.fixed_ctrl_latency);
  }
  throw std::logic_error("unknown control latency model");
}

}  // namespace

TestBed::TestBed(net::Graph graph, TestBedParams params)
    : graph_(std::move(graph)), params_(params) {
  fabric_ = std::make_unique<p4rt::Fabric>(sim_, graph_, params_.switch_params,
                                           params_.seed);
  fabric_->trace().set_enabled(params_.trace_enabled);

  sim::Rng latency_rng(params_.seed ^ 0xC0117801ull);
  channel_ = std::make_unique<p4rt::ControlChannel>(
      sim_, *fabric_, control_latencies(graph_, params_, latency_rng),
      params_.ctrl_send_service);
  channel_->set_services(params_.ctrl_send_service, params_.ctrl_recv_service);

  control::Nib nib(graph_);
  switch (params_.system) {
    case SystemKind::kP4Update: {
      core::P4UpdateSwitchParams sp;
      sp.congestion_mode = params_.congestion_mode;
      sp.allow_consecutive_dual = params_.allow_consecutive_dual;
      sp.wait_timeout = params_.p4u_wait_timeout;
      sp.uim_watchdog = params_.p4u_uim_watchdog;
      for (std::size_t n = 0; n < graph_.node_count(); ++n) {
        auto pipe = std::make_unique<core::P4UpdateSwitch>(
            static_cast<net::NodeId>(n), graph_, sp);
        fabric_->sw(static_cast<net::NodeId>(n)).set_pipeline(pipe.get());
        p4u_switches_.push_back(std::move(pipe));
      }
      core::P4UpdateControllerParams cp;
      cp.congestion_mode = params_.congestion_mode;
      cp.force_type = params_.force_type;
      cp.allow_consecutive_dual = params_.allow_consecutive_dual;
      cp.enable_retrigger = params_.enable_retrigger;
      p4u_ctrl_ = std::make_unique<core::P4UpdateController>(
          *channel_, std::move(nib), cp);
      break;
    }
    case SystemKind::kEzSegway: {
      baseline::EzSwitchParams sp;
      sp.congestion_mode = params_.congestion_mode;
      for (std::size_t n = 0; n < graph_.node_count(); ++n) {
        auto pipe = std::make_unique<baseline::EzSegwaySwitch>(
            static_cast<net::NodeId>(n), graph_, sp);
        fabric_->sw(static_cast<net::NodeId>(n)).set_pipeline(pipe.get());
        ez_switches_.push_back(std::move(pipe));
      }
      baseline::EzControllerParams cp;
      cp.congestion_mode = params_.congestion_mode;
      ez_ctrl_ = std::make_unique<baseline::EzSegwayController>(
          *channel_, std::move(nib), cp);
      break;
    }
    case SystemKind::kCentral: {
      baseline::CentralParams cp;
      cp.congestion_mode = params_.congestion_mode;
      for (std::size_t n = 0; n < graph_.node_count(); ++n) {
        auto pipe = std::make_unique<baseline::CentralSwitch>(
            static_cast<net::NodeId>(n));
        fabric_->sw(static_cast<net::NodeId>(n)).set_pipeline(pipe.get());
        central_switches_.push_back(std::move(pipe));
      }
      central_ctrl_ = std::make_unique<baseline::CentralController>(
          *channel_, std::move(nib), cp);
      break;
    }
  }

  monitor_ = std::make_unique<InvariantMonitor>(*fabric_,
                                                params_.monitor_capacity);
  monitor_->attach();
}

const control::FlowDb& TestBed::flow_db() const {
  switch (params_.system) {
    case SystemKind::kP4Update: return p4u_ctrl_->flow_db();
    case SystemKind::kEzSegway: return ez_ctrl_->flow_db();
    case SystemKind::kCentral: return central_ctrl_->flow_db();
  }
  throw std::logic_error("unknown system");
}

void TestBed::deploy_flow(const net::Flow& f, const net::Path& initial_path) {
  if (initial_path.front() != f.ingress || initial_path.back() != f.egress) {
    throw std::invalid_argument("deploy_flow: path does not match flow");
  }
  // Bring up the data plane: every on-path switch gets the version-1 state.
  for (std::size_t i = 0; i < initial_path.size(); ++i) {
    const net::NodeId n = initial_path[i];
    const auto dist = static_cast<p4rt::Distance>(initial_path.size() - 1 - i);
    const std::int32_t port =
        i + 1 == initial_path.size()
            ? p4rt::SwitchDevice::kLocalPort
            : graph_.port_of(n, initial_path[i + 1]);
    auto& sw = fabric_->sw(n);
    switch (params_.system) {
      case SystemKind::kP4Update:
        p4u_switches_[static_cast<std::size_t>(n)]->bootstrap_flow(
            sw, f.id, /*version=*/1, dist, port, f.size);
        break;
      case SystemKind::kEzSegway:
        ez_switches_[static_cast<std::size_t>(n)]->bootstrap_flow(sw, f.id,
                                                                  port, f.size);
        break;
      case SystemKind::kCentral:
        central_switches_[static_cast<std::size_t>(n)]->bootstrap_flow(
            sw, f.id, port);
        break;
    }
  }
  switch (params_.system) {
    case SystemKind::kP4Update: p4u_ctrl_->register_flow(f, initial_path); break;
    case SystemKind::kEzSegway: ez_ctrl_->register_flow(f, initial_path); break;
    case SystemKind::kCentral: central_ctrl_->register_flow(f, initial_path); break;
  }
  monitor_->watch_flow(f);
}

void TestBed::deploy_tree(const net::Flow& f, const control::DestTree& tree) {
  if (params_.system != SystemKind::kP4Update) {
    throw std::logic_error("deploy_tree: destination trees are a P4Update "
                           "extension (§11)");
  }
  if (f.egress != tree.root) {
    throw std::invalid_argument("deploy_tree: flow egress must be the root");
  }
  for (const control::TreeNodeLabel& l : control::label_tree(graph_, tree)) {
    p4u_switches_[static_cast<std::size_t>(l.node)]->bootstrap_flow(
        fabric_->sw(l.node), f.id, /*version=*/1, l.depth, l.parent_port,
        f.size);
  }
  p4u_ctrl_->register_tree(f);
  monitor_->watch_flow(f);
}

void TestBed::schedule_update_at(sim::Time at, net::FlowId flow,
                                 net::Path new_path) {
  sim_.schedule_at(at, [this, flow, new_path = std::move(new_path)]() {
    switch (params_.system) {
      case SystemKind::kP4Update:
        p4u_ctrl_->schedule_update(flow, new_path);
        break;
      case SystemKind::kEzSegway:
        ez_ctrl_->schedule_update(flow, new_path);
        break;
      case SystemKind::kCentral:
        central_ctrl_->schedule_update(flow, new_path);
        break;
    }
  });
}

void TestBed::schedule_batch_at(
    sim::Time at, std::vector<std::pair<net::FlowId, net::Path>> batch) {
  sim_.schedule_at(at, [this, batch = std::move(batch)]() {
    switch (params_.system) {
      case SystemKind::kP4Update:
        for (const auto& [flow, path] : batch) {
          p4u_ctrl_->schedule_update(flow, path);
        }
        break;
      case SystemKind::kEzSegway:
        ez_ctrl_->schedule_updates(batch);
        break;
      case SystemKind::kCentral:
        for (const auto& [flow, path] : batch) {
          central_ctrl_->schedule_update(flow, path);
        }
        break;
    }
  });
}

void TestBed::start_traffic(net::FlowId flow, net::NodeId ingress, double pps,
                            std::uint32_t n_packets, std::int32_t ttl) {
  const auto gap =
      static_cast<sim::Duration>(static_cast<double>(sim::kSecond) / pps);
  for (std::uint32_t i = 0; i < n_packets; ++i) {
    p4rt::DataHeader d;
    d.flow = flow;
    d.seq = i;
    d.ttl = ttl;
    sim_.schedule_in(gap * static_cast<sim::Duration>(i + 1),
                     [this, ingress, d]() {
                       fabric_->inject(ingress, p4rt::Packet{d}, -1);
                     });
  }
}

void TestBed::force_belief(net::FlowId flow, net::Path path) {
  control::Nib* nib = nullptr;
  switch (params_.system) {
    case SystemKind::kP4Update: nib = &p4u_ctrl_->nib(); break;
    case SystemKind::kEzSegway: nib = &ez_ctrl_->nib(); break;
    case SystemKind::kCentral: nib = &central_ctrl_->nib(); break;
  }
  nib->believe_path(flow, std::move(path));
  nib->view(flow).update_in_progress = false;
}

void TestBed::run(sim::Time until) { sim_.run(until); }

void TestBed::collect_metrics() {
  auto& m = fabric_->metrics();
  // Tops a counter up to `total` (collect may run more than once per bed).
  const auto top_up = [&m](const char* name, const obs::LabelSet& labels,
                           std::uint64_t total) {
    auto c = m.counter(name, labels);
    if (total > c.value()) c.inc(total - c.value());
  };
  for (const auto& pipe : p4u_switches_) {
    const obs::LabelSet self{{"switch", std::to_string(pipe->id())}};
    top_up("uib.register_reads", self, pipe->uib().register_reads());
    top_up("uib.register_writes", self, pipe->uib().register_writes());
    top_up("p4update.unms_sent", self, pipe->unms_sent());
    top_up("p4update.resubmissions", self, pipe->resubmissions());
    top_up("p4update.rejects", self, pipe->rejects());
  }
}

}  // namespace p4u::harness
