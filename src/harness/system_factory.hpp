// SystemFactory: uniform construction of the systems under test.
//
// Every protocol (P4Update, ez-Segway, Central, and anything future PRs
// add) plugs into the TestBed through one SystemAdapter interface: build
// the per-switch pipelines against the fabric, build the controller, and
// answer the handful of operations scenarios need (bootstrap a hop,
// register / update flows, expose the FlowDb and NIB). The registry maps a
// SystemKind to a factory so the harness, experiments, and benches never
// switch over the enum — adding a protocol is one register_system call.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "control/flow_db.hpp"
#include "control/nib.hpp"
#include "faults/fault_plan.hpp"
#include "faults/recovery.hpp"
#include "net/flow.hpp"
#include "net/graph.hpp"
#include "net/paths.hpp"
#include "obs/metrics.hpp"
#include "p4rt/packet.hpp"
#include "p4rt/switch_device.hpp"
#include "sim/time.hpp"

namespace p4u::core {
class P4UpdateController;
class P4UpdateSwitch;
}  // namespace p4u::core
namespace p4u::baseline {
class EzSegwayController;
class CentralController;
}  // namespace p4u::baseline
namespace p4u::p4rt {
class ControlChannel;
class Fabric;
}  // namespace p4u::p4rt
namespace p4u::sim {
class ScheduleStrategy;
class Simulator;
}  // namespace p4u::sim

namespace p4u::harness {

enum class SystemKind {
  kP4Update,
  kEzSegway,
  kCentral,
};

const char* to_string(SystemKind k);

/// How controller <-> switch latency is derived.
enum class CtrlLatencyModel {
  kWanCentroid,     // shortest-path latency from the centroid node (§9.1)
  kFattreeNormal,   // per-switch truncated normal (mean 4 ms, sd 3, min .5)
  kFixed,           // constant (synthetic topologies)
};

struct TestBedParams {
  SystemKind system = SystemKind::kP4Update;
  std::uint64_t seed = 1;
  p4rt::SwitchParams switch_params;
  /// Controller costs are asymmetric (§9.1, [40]): emitting a precomputed
  /// message is a cheap write, but each inbound notification is parsed,
  /// fed into the NIB, and may trigger dependency recomputation on the
  /// single-threaded (Python, in the paper) controller — that queuing +
  /// processing delay is what penalizes chatty centralized updates.
  sim::Duration ctrl_send_service = sim::microseconds(500);
  sim::Duration ctrl_recv_service = sim::milliseconds(5);
  CtrlLatencyModel ctrl_latency_model = CtrlLatencyModel::kFixed;
  /// For synthetic topologies the controller is "one designated node" (§5),
  /// i.e. reachable over the same kind of links: default = one 20 ms hop.
  sim::Duration fixed_ctrl_latency = sim::milliseconds(20);
  bool congestion_mode = false;
  bool monitor_capacity = false;
  // P4Update-specific knobs.
  std::optional<p4rt::UpdateType> force_type;
  bool allow_consecutive_dual = false;
  bool enable_retrigger = false;               // §11 failure recovery
  sim::Duration p4u_wait_timeout = sim::seconds(10);
  sim::Duration p4u_uim_watchdog = 0;          // 0 = watchdog off
  bool trace_enabled = true;
  /// Record the controller's wall-clock preparation cost (ctrl.prep_ms).
  /// The one nondeterministic metric: campaigns force it off so merged
  /// reports are byte-identical across reruns and `--jobs` counts.
  bool measure_prep_wallclock = true;
  /// Failure domain: the probabilistic fault model plus the run's scheduled
  /// link/switch events. Validated against the graph at TestBed
  /// construction; the fabric executes it from the event queue.
  faults::FaultPlan fault_plan;
  /// Controller-side recovery knobs (completion timers, backoff, repair
  /// routing). Off by default: fault-free runs stay bit-exact.
  faults::RecoveryParams recovery;
  /// Capacity hints for million-flow runs; 0 = grow on demand (the
  /// default keeps small beds allocation-lean). `expected_flows` is the
  /// total distinct flows the run will register (controller NIB + FlowDb
  /// preallocation); `expected_flows_per_switch` sizes each switch's UIB
  /// and per-flow pools — per switch, not total, since a flow only
  /// occupies the switches on its path.
  std::size_t expected_flows = 0;
  std::size_t expected_flows_per_switch = 0;
  /// Event-ordering strategy for the run; nullptr keeps the simulator's
  /// historical fast path (equivalent to SeededStrategy). Not owned: must
  /// outlive the TestBed. Installed before any event is scheduled, so even
  /// construction-time fault events are under strategy control.
  sim::ScheduleStrategy* strategy = nullptr;
  /// Sharded parallel engine (DESIGN.md §13). 0 = the historical
  /// single-threaded path, untouched. K >= 1 switches to the keyed sharded
  /// engine: switches are partitioned into K logical processes executing
  /// conservative time windows; K = 1 runs the same keyed semantics inline
  /// (no threads) and is the byte-identity baseline for every K > 1.
  /// Incompatible with fault plans, traffic, and traces; a run with a
  /// ScheduleStrategy transparently falls back to the legacy engine.
  int shards = 0;
  /// Virtual-time cadence of the invariant-monitor sweep in sharded mode.
  /// The monitor walks global switch state, so it cannot ride per-install
  /// notifications off arbitrary worker threads; instead it runs between
  /// windows at every multiple of this interval (and once at end of run),
  /// at identical virtual times for every K.
  sim::Duration shard_check_interval = sim::milliseconds(10);
};

/// Everything an adapter needs to wire one system into a run. The fabric
/// and channel outlive the adapter; the graph and params are owned by the
/// TestBed.
struct SystemContext {
  sim::Simulator& sim;
  p4rt::Fabric& fabric;
  p4rt::ControlChannel& channel;
  const net::Graph& graph;
  const TestBedParams& params;
};

/// One system under test, fully wired: the per-switch pipelines (already
/// attached to the fabric) plus the controller. The TestBed drives every
/// system exclusively through this interface.
class SystemAdapter {
 public:
  virtual ~SystemAdapter() = default;

  /// Installs the version-1 state for one on-path hop of `f`: `dist` hops
  /// to the egress, forwarding out of `port` (kLocalPort delivers).
  virtual void bootstrap_flow_hop(p4rt::SwitchDevice& sw, const net::Flow& f,
                                  p4rt::Distance dist, std::int32_t port) = 0;

  /// Registers an already-deployed flow with the controller.
  virtual void register_flow(const net::Flow& f, const net::Path& path) = 0;

  /// Asks the controller to move `flow` onto `new_path`, now.
  virtual void schedule_update(net::FlowId flow, const net::Path& new_path) = 0;

  /// Issues a batch of updates (systems that precompute per-batch state —
  /// ez-Segway's priorities — do it here; others loop).
  virtual void schedule_batch(
      const std::vector<std::pair<net::FlowId, net::Path>>& batch) = 0;

  [[nodiscard]] virtual const control::FlowDb& flow_db() const = 0;
  [[nodiscard]] virtual control::Nib& nib() = 0;

  /// Flushes end-of-run state (per-switch register access counters, …)
  /// into the registry. Must be idempotent; the default does nothing.
  virtual void collect_metrics(obs::MetricsRegistry& m) { (void)m; }

  // Narrow accessors for tests and demos that poke one concrete system.
  // Adapters for other systems keep the nullptr defaults.
  [[nodiscard]] virtual core::P4UpdateController* as_p4update() {
    return nullptr;
  }
  [[nodiscard]] virtual core::P4UpdateSwitch* p4update_switch(net::NodeId n) {
    (void)n;
    return nullptr;
  }
  [[nodiscard]] virtual baseline::EzSegwayController* as_ezsegway() {
    return nullptr;
  }
  [[nodiscard]] virtual baseline::CentralController* as_central() {
    return nullptr;
  }
};

/// Process-wide registry of SystemKind -> adapter factory. The built-in
/// systems are registered on first use; future protocols call
/// register_system once (e.g. from a static initializer).
class SystemFactory {
 public:
  using FactoryFn =
      std::function<std::unique_ptr<SystemAdapter>(const SystemContext&)>;

  /// The singleton, with the built-in systems pre-registered.
  static SystemFactory& instance();

  /// Registers (or replaces) the factory for `kind`. Thread-safe.
  void register_system(SystemKind kind, std::string name, FactoryFn fn);

  /// Builds the adapter for `kind`; throws std::logic_error when no factory
  /// is registered. Thread-safe: campaign jobs create adapters concurrently.
  [[nodiscard]] std::unique_ptr<SystemAdapter> create(
      SystemKind kind, const SystemContext& ctx) const;

  /// Registered (kind, name) pairs, in enum order.
  [[nodiscard]] std::vector<std::pair<SystemKind, std::string>> registered()
      const;

 private:
  SystemFactory();
  struct Entry {
    std::string name;
    FactoryFn fn;
  };
  // p4u-detlint: allow(thread-containment) registration-registry guard: campaign workers read the singleton concurrently; it protects entries_ only and never touches simulation state or report bytes
  mutable std::mutex mu_;
  std::vector<std::pair<SystemKind, Entry>> entries_;
};

}  // namespace p4u::harness
