// SystemFactory: uniform construction of the systems under test.
//
// Every protocol (P4Update, ez-Segway, Central, and anything future PRs
// add) plugs into the TestBed through one SystemAdapter interface: build
// the per-switch pipelines against the fabric, build the controller, and
// answer the handful of operations scenarios need (bootstrap a hop,
// register / update flows, expose the FlowDb and NIB). The registry maps a
// SystemKind to a factory so the harness, experiments, and benches never
// switch over the enum — adding a protocol is one register_system call.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "control/admission.hpp"
#include "control/flow_db.hpp"
#include "control/nib.hpp"
#include "faults/fault_plan.hpp"
#include "faults/recovery.hpp"
#include "net/flow.hpp"
#include "net/graph.hpp"
#include "net/paths.hpp"
#include "obs/metrics.hpp"
#include "p4rt/packet.hpp"
#include "p4rt/switch_device.hpp"
#include "sim/time.hpp"

namespace p4u::core {
class P4UpdateController;
class P4UpdateSwitch;
}  // namespace p4u::core
namespace p4u::baseline {
class EzSegwayController;
class CentralController;
}  // namespace p4u::baseline
namespace p4u::p4rt {
class ControlChannel;
class Fabric;
}  // namespace p4u::p4rt
namespace p4u::sim {
class ScheduleStrategy;
class Simulator;
}  // namespace p4u::sim

namespace p4u::harness {

enum class SystemKind {
  kP4Update,
  kEzSegway,
  kCentral,
};

const char* to_string(SystemKind k);

/// How controller <-> switch latency is derived.
enum class CtrlLatencyModel {
  kWanCentroid,     // shortest-path latency from the centroid node (§9.1)
  kFattreeNormal,   // per-switch truncated normal (mean 4 ms, sd 3, min .5)
  kFixed,           // constant (synthetic topologies)
};

struct TestBedParams {
  SystemKind system = SystemKind::kP4Update;
  std::uint64_t seed = 1;
  p4rt::SwitchParams switch_params;
  /// Controller costs are asymmetric (§9.1, [40]): emitting a precomputed
  /// message is a cheap write, but each inbound notification is parsed,
  /// fed into the NIB, and may trigger dependency recomputation on the
  /// single-threaded (Python, in the paper) controller — that queuing +
  /// processing delay is what penalizes chatty centralized updates.
  sim::Duration ctrl_send_service = sim::microseconds(500);
  sim::Duration ctrl_recv_service = sim::milliseconds(5);
  CtrlLatencyModel ctrl_latency_model = CtrlLatencyModel::kFixed;
  /// For synthetic topologies the controller is "one designated node" (§5),
  /// i.e. reachable over the same kind of links: default = one 20 ms hop.
  sim::Duration fixed_ctrl_latency = sim::milliseconds(20);
  bool congestion_mode = false;
  bool monitor_capacity = false;
  // P4Update-specific knobs.
  std::optional<p4rt::UpdateType> force_type;
  bool allow_consecutive_dual = false;
  bool enable_retrigger = false;               // §11 failure recovery
  /// P4Update: run the static plan verifier before dispatch (DESIGN.md §12)
  /// and count verdicts; with enforce, unsafe plans are refused (the
  /// request settles kRolledBack without touching the data plane).
  bool static_preflight = false;
  bool enforce_preflight = false;
  sim::Duration p4u_wait_timeout = sim::seconds(10);
  sim::Duration p4u_uim_watchdog = 0;          // 0 = watchdog off
  bool trace_enabled = true;
  /// Record the controller's wall-clock preparation cost (ctrl.prep_ms).
  /// The one nondeterministic metric: campaigns force it off so merged
  /// reports are byte-identical across reruns and `--jobs` counts.
  bool measure_prep_wallclock = true;
  /// Failure domain: the probabilistic fault model plus the run's scheduled
  /// link/switch events. Validated against the graph at TestBed
  /// construction; the fabric executes it from the event queue.
  faults::FaultPlan fault_plan;
  /// Controller-side recovery knobs (completion timers, backoff, repair
  /// routing). Off by default: fault-free runs stay bit-exact.
  faults::RecoveryParams recovery;
  /// Capacity hints for million-flow runs; 0 = grow on demand (the
  /// default keeps small beds allocation-lean). `expected_flows` is the
  /// total distinct flows the run will register (controller NIB + FlowDb
  /// preallocation); `expected_flows_per_switch` sizes each switch's UIB
  /// and per-flow pools — per switch, not total, since a flow only
  /// occupies the switches on its path.
  std::size_t expected_flows = 0;
  std::size_t expected_flows_per_switch = 0;
  /// Event-ordering strategy for the run; nullptr keeps the simulator's
  /// historical fast path (equivalent to SeededStrategy). Not owned: must
  /// outlive the TestBed. Installed before any event is scheduled, so even
  /// construction-time fault events are under strategy control.
  sim::ScheduleStrategy* strategy = nullptr;
  /// Sharded parallel engine (DESIGN.md §13). 0 = the historical
  /// single-threaded path, untouched. K >= 1 switches to the keyed sharded
  /// engine: switches are partitioned into K logical processes executing
  /// conservative time windows; K = 1 runs the same keyed semantics inline
  /// (no threads) and is the byte-identity baseline for every K > 1.
  /// Incompatible with fault plans, traffic, and traces; a run with a
  /// ScheduleStrategy transparently falls back to the legacy engine.
  int shards = 0;
  /// Virtual-time cadence of the invariant-monitor sweep in sharded mode.
  /// The monitor walks global switch state, so it cannot ride per-install
  /// notifications off arbitrary worker threads; instead it runs between
  /// windows at every multiple of this interval (and once at end of run),
  /// at identical virtual times for every K.
  sim::Duration shard_check_interval = sim::milliseconds(10);
  /// Request admission in front of the controller (control/admission.hpp):
  /// bounded in-flight updates, deterministic FIFO, per-flow coalescing.
  /// The default (both bounds 0) is a strict pass-through — every
  /// pre-churn scenario submits straight through to the controller.
  control::AdmissionParams admission;
};

/// Everything an adapter needs to wire one system into a run. The fabric
/// and channel outlive the adapter; the graph and params are owned by the
/// TestBed.
struct SystemContext {
  sim::Simulator& sim;
  p4rt::Fabric& fabric;
  p4rt::ControlChannel& channel;
  const net::Graph& graph;
  const TestBedParams& params;
};

/// One unit of client intent: move (or bring up / retire) `flow`.
struct UpdateRequest {
  net::FlowId flow = 0;
  net::Path new_path;
  control::RequestKind kind = control::RequestKind::kReroute;
};

/// Receipt for a submitted request. `version` is the update version the
/// controller issued, or 0 while the request is still queued (admission
/// bounds) or the controller has not assigned one yet; the ledger record
/// (SystemAdapter::request) carries the final version and outcome.
struct Ticket {
  control::RequestId request_id = 0;
  net::FlowId flow = 0;
  p4rt::Version version = 0;
  sim::Time submit_time = 0;
};

/// Static-preflight totals (DESIGN.md §12); all-zero for systems without a
/// preflight verifier.
struct PreflightCounters {
  std::uint64_t safe = 0;
  std::uint64_t unsafe = 0;
  std::uint64_t unknown = 0;
  std::uint64_t skipped = 0;
};

/// One system under test, fully wired: the per-switch pipelines (already
/// attached to the fabric) plus the controller. The TestBed drives every
/// system exclusively through this interface.
///
/// Submission is ticketed: `submit` hands the request to the admission
/// queue (bounds + FIFO + coalescing per TestBedParams::admission) and
/// returns a Ticket; the per-request lifecycle is queryable from the
/// FlowDb request ledger. Adapters implement the protected dispatch hooks;
/// they never see queueing.
class SystemAdapter {
 public:
  virtual ~SystemAdapter() = default;

  /// Installs the version-1 state for one on-path hop of `f`: `dist` hops
  /// to the egress, forwarding out of `port` (kLocalPort delivers).
  virtual void bootstrap_flow_hop(p4rt::SwitchDevice& sw, const net::Flow& f,
                                  p4rt::Distance dist, std::int32_t port) = 0;

  /// Registers an already-deployed flow with the controller.
  virtual void register_flow(const net::Flow& f, const net::Path& path) = 0;

  /// Submits one request through the admission queue.
  Ticket submit(const UpdateRequest& req);

  /// Submits a batch: systems that precompute per-batch state (ez-Segway's
  /// congestion priorities) do it once up front, then every request is
  /// submitted in order.
  std::vector<Ticket> submit_batch(const std::vector<UpdateRequest>& batch);

  /// Records a request that needs no data-plane transition (instant flow
  /// bring-up / removal); it settles kCompleted immediately.
  Ticket note_instant(net::FlowId flow, control::RequestKind kind);

  /// Ledger record for a ticket (nullptr for an unknown id).
  [[nodiscard]] const control::RequestRecord* request(
      control::RequestId id) const;

  /// The admission queue (depth/peak stats for benches). Valid for the
  /// adapter's whole lifetime.
  [[nodiscard]] control::AdmissionQueue& admission() { return *admission_; }

  /// Per-request terminal notifications (fired in per-flow version order).
  void set_notify(control::AdmissionQueue::NotifyFn fn) {
    admission_->set_notify(std::move(fn));
  }

  [[nodiscard]] virtual const control::FlowDb& flow_db() const = 0;
  [[nodiscard]] virtual control::Nib& nib() = 0;

  /// Flushes end-of-run state (per-switch register access counters, …)
  /// into the registry. Must be idempotent; the default does nothing.
  virtual void collect_metrics(obs::MetricsRegistry& m) { (void)m; }

  // Capability accessors: the uniform view of per-system knobs/counters a
  // system-agnostic driver (bench/churn) needs, instead of downcasting.
  /// The run's controller-recovery knobs.
  [[nodiscard]] const faults::RecoveryParams& recovery_params() const {
    return recovery_;
  }
  /// Preflight verdict totals; zeros for systems without static preflight.
  [[nodiscard]] virtual PreflightCounters preflight_counters() const {
    return {};
  }

  // Narrow accessors for tests and demos that poke one concrete system.
  // Adapters for other systems keep the nullptr defaults.
  [[nodiscard]] virtual core::P4UpdateController* as_p4update() {
    return nullptr;
  }
  [[nodiscard]] virtual core::P4UpdateSwitch* p4update_switch(net::NodeId n) {
    (void)n;
    return nullptr;
  }
  [[nodiscard]] virtual baseline::EzSegwayController* as_ezsegway() {
    return nullptr;
  }
  [[nodiscard]] virtual baseline::CentralController* as_central() {
    return nullptr;
  }

 protected:
  /// Hands one request to the controller; returns the issued version (0 +
  /// accepted when the controller queued it internally without a version;
  /// !accepted when nothing was issued at all).
  virtual control::DispatchResult dispatch_update(net::FlowId flow,
                                                  const net::Path& path) = 0;

  /// Per-batch precompute hook (default: none).
  virtual void prepare_batch(const std::vector<UpdateRequest>& batch) {
    (void)batch;
  }

  /// The controller's FlowDb, mutably (the admission queue writes the
  /// request ledger through it).
  [[nodiscard]] virtual control::FlowDb& mutable_flow_db() = 0;

  /// Wires the admission queue: called once at the END of every derived
  /// constructor (the controller — and with it the FlowDb — must exist).
  /// Derived constructors also hook their controller's on_settled to
  /// `settled` right after.
  void init_submission(const SystemContext& ctx);

  /// Controller settle hook target: resolves the matching request and pumps
  /// the queue into the freed slot.
  void settled(net::FlowId flow, p4rt::Version version,
               control::UpdateOutcome outcome) {
    admission_->on_update_settled(flow, version, outcome);
  }

 private:
  std::unique_ptr<control::AdmissionQueue> admission_;
  faults::RecoveryParams recovery_;
};

/// Process-wide registry of SystemKind -> adapter factory. The built-in
/// systems are registered on first use; future protocols call
/// register_system once (e.g. from a static initializer).
class SystemFactory {
 public:
  using FactoryFn =
      std::function<std::unique_ptr<SystemAdapter>(const SystemContext&)>;

  /// The singleton, with the built-in systems pre-registered.
  static SystemFactory& instance();

  /// Registers (or replaces) the factory for `kind`. Thread-safe.
  void register_system(SystemKind kind, std::string name, FactoryFn fn);

  /// Builds the adapter for `kind`; throws std::logic_error when no factory
  /// is registered. Thread-safe: campaign jobs create adapters concurrently.
  [[nodiscard]] std::unique_ptr<SystemAdapter> create(
      SystemKind kind, const SystemContext& ctx) const;

  /// Registered (kind, name) pairs, in enum order.
  [[nodiscard]] std::vector<std::pair<SystemKind, std::string>> registered()
      const;

 private:
  SystemFactory();
  struct Entry {
    std::string name;
    FactoryFn fn;
  };
  // p4u-detlint: allow(thread-containment) registration-registry guard: campaign workers read the singleton concurrently; it protects entries_ only and never touches simulation state or report bytes
  mutable std::mutex mu_;
  std::vector<std::pair<SystemKind, Entry>> entries_;
};

}  // namespace p4u::harness
