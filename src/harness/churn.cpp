#include "harness/churn.hpp"

#include <algorithm>
#include <stdexcept>

namespace p4u::harness {

namespace {

/// Synthetic unique flow ids, like run_scale_job: splitmix64 is a bijection
/// on uint64, so sequential slots never collide (salted away from scale's).
net::FlowId synthetic_id(std::uint64_t slot) {
  std::uint64_t state = slot + 0xC0A1FF0Dull;
  return sim::splitmix64(state);
}

}  // namespace

ChurnWorkload make_churn_workload(const net::Graph& g, std::uint64_t seed,
                                  const ChurnParams& params) {
  ChurnWorkload wl;

  std::vector<net::NodeId> endpoints = params.endpoints;
  if (endpoints.empty()) {
    endpoints.reserve(g.node_count());
    for (std::size_t n = 0; n < g.node_count(); ++n) {
      endpoints.push_back(static_cast<net::NodeId>(n));
    }
  }

  // Pair pool: bounded rejection like run_scale_job — pairs without a
  // second path cannot be rerouted and are re-rolled.
  sim::Rng pair_rng(seed ^ 0xC0A1B41Full);
  const std::size_t k = std::max<std::size_t>(params.paths_per_pair, 2);
  for (int attempts = 0;
       wl.pairs.size() < params.pairs &&
       attempts < static_cast<int>(params.pairs) * 8;
       ++attempts) {
    const net::NodeId src = endpoints[pair_rng.uniform(endpoints.size())];
    const net::NodeId dst = endpoints[pair_rng.uniform(endpoints.size())];
    if (src == dst) continue;
    auto ksp = net::k_shortest_paths(g, src, dst, k, net::Metric::kHops);
    if (ksp.size() < 2) continue;
    wl.pairs.push_back({src, dst, std::move(ksp)});
  }
  if (wl.pairs.empty()) {
    throw std::logic_error("make_churn_workload: no endpoint pair has two "
                           "distinct paths");
  }

  // Initial population, dealt round-robin over the pairs.
  const auto make_slot = [&wl](std::size_t pair, bool initial) {
    ChurnWorkload::FlowSlot slot;
    slot.pair = pair;
    slot.initial = initial;
    slot.flow.id = synthetic_id(wl.flows.size());
    slot.flow.ingress = wl.pairs[pair].src;
    slot.flow.egress = wl.pairs[pair].dst;
    slot.flow.size = 1.0;
    wl.flows.push_back(slot);
    return wl.flows.size() - 1;
  };
  std::vector<std::size_t> active;
  active.reserve(params.initial_flows);
  for (std::size_t i = 0; i < params.initial_flows; ++i) {
    active.push_back(make_slot(i % wl.pairs.size(), /*initial=*/true));
  }

  // The event stream: Poisson arrivals (exponential gaps), each classified
  // by the normalized kind mix. Generation tracks the active slot set so a
  // remove never targets a retired flow and an add creates a fresh slot;
  // per-slot `last_choice` avoids degenerate same-path reroutes where the
  // pair offers an alternative.
  const double w_total =
      std::max(params.w_add + params.w_remove + params.w_reroute, 1e-9);
  const double mean_gap_ms =
      1000.0 / std::max(params.arrivals_per_sec, 1e-9);
  sim::Rng ev_rng(seed ^ 0xC0A1EF7ull);
  std::vector<std::size_t> last_choice(wl.flows.size(), 0);
  sim::Time t = params.start;
  const sim::Time end = params.start + params.duration;
  for (;;) {
    t += sim::exponential_ms(ev_rng, mean_gap_ms);
    if (t >= end) break;
    const double roll = ev_rng.uniform01() * w_total;
    ChurnEvent ev;
    ev.at = t;
    if (roll < params.w_add || active.empty()) {
      ev.kind = control::RequestKind::kAdd;
      ev.flow_slot = make_slot(ev_rng.uniform(wl.pairs.size()), false);
      last_choice.push_back(0);
      active.push_back(ev.flow_slot);
    } else if (roll < params.w_add + params.w_remove) {
      ev.kind = control::RequestKind::kRemove;
      const std::size_t pick = ev_rng.uniform(active.size());
      ev.flow_slot = active[pick];
      active[pick] = active.back();
      active.pop_back();
    } else {
      ev.kind = control::RequestKind::kReroute;
      ev.flow_slot = active[ev_rng.uniform(active.size())];
      const ChurnWorkload::FlowSlot& slot = wl.flows[ev.flow_slot];
      const std::size_t n_paths = wl.pairs[slot.pair].paths.size();
      std::size_t choice = ev_rng.uniform(n_paths);
      if (choice == last_choice[ev.flow_slot] && n_paths > 1) {
        choice = (choice + 1) % n_paths;
      }
      ev.path_choice = choice;
      last_choice[ev.flow_slot] = choice;
    }
    wl.events.push_back(ev);
  }
  return wl;
}

void install_churn(TestBed& bed, const ChurnWorkload& wl) {
  for (const ChurnWorkload::FlowSlot& slot : wl.flows) {
    if (slot.initial) {
      bed.deploy_flow(slot.flow, wl.pairs[slot.pair].paths[0]);
    }
  }
  sim::Simulator& sim = bed.simulator();
  TestBed* bedp = &bed;
  for (const ChurnEvent& ev : wl.events) {
    const ChurnWorkload::FlowSlot& slot = wl.flows[ev.flow_slot];
    const sim::EventTag tag{-1, sim::EventClass::kScenario, slot.flow.id};
    switch (ev.kind) {
      case control::RequestKind::kAdd:
        // Bring-up is instant in the data plane (bootstrap writes, no
        // protocol), so an add settles at submit time; the ledger records
        // it so throughput and liveness still account for it.
        sim.schedule_at(
            ev.at, tag,
            [bedp, flow = slot.flow,
             path = wl.pairs[slot.pair].paths[0]] {
              bedp->deploy_flow(flow, path);
              bedp->system().note_instant(flow.id,
                                          control::RequestKind::kAdd);
            });
        break;
      case control::RequestKind::kRemove:
        // Teardown is likewise instant; the flow stays on its last path in
        // the data plane (retired flows receive no further requests).
        sim.schedule_at(ev.at, tag, [bedp, id = slot.flow.id] {
          bedp->system().note_instant(id, control::RequestKind::kRemove);
        });
        break;
      case control::RequestKind::kReroute:
        sim.schedule_at(
            ev.at, tag,
            [bedp, id = slot.flow.id,
             path = wl.pairs[slot.pair].paths[ev.path_choice]] {
              bedp->submit(UpdateRequest{id, path,
                                         control::RequestKind::kReroute});
            });
        break;
    }
  }
}

}  // namespace p4u::harness
