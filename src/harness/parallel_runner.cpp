#include "harness/parallel_runner.hpp"

namespace p4u::harness {

unsigned hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

int resolve_jobs(int requested) {
  if (requested <= 0) return static_cast<int>(hardware_jobs());
  return requested;
}

}  // namespace p4u::harness
