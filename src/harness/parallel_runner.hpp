// Deterministic parallel execution of independent seeded jobs.
//
// parallel_map_indexed runs fn(0), ..., fn(n-1) across a small thread pool
// and returns the results in index order, regardless of which worker
// finished first: results land in a fixed slot array and are only touched
// by the main thread after every worker joined. A job must be self-
// contained (own Simulator, Rng, MetricsRegistry, ...) and share nothing
// mutable with its siblings; under that contract the parallel result is
// byte-identical to the serial one — parallelism is purely a wall-clock
// optimization, determinism is the invariant.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <optional>
#include <thread>
#include <type_traits>
#include <vector>

namespace p4u::harness {

/// std::thread::hardware_concurrency, clamped to >= 1.
unsigned hardware_jobs();

/// Resolves a --jobs request: values <= 0 mean "use every core".
int resolve_jobs(int requested);

/// Runs fn(i) for i in [0, n) on up to `jobs` workers (<= 0: every core)
/// and returns the results in index order. Workers claim indices from an
/// atomic counter; a thrown job exception is captured and rethrown on the
/// calling thread (lowest index wins) after all workers drained.
template <typename Fn>
auto parallel_map_indexed(std::size_t n, int jobs, Fn&& fn)
    -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
  using R = std::invoke_result_t<Fn&, std::size_t>;
  static_assert(std::is_move_constructible_v<R>,
                "job results must be movable");
  std::vector<std::optional<R>> slots(n);
  const auto workers = static_cast<std::size_t>(resolve_jobs(jobs));
  if (workers <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) slots[i].emplace(fn(i));
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(n);
    std::vector<std::thread> pool;
    pool.reserve(std::min(workers, n));
    for (std::size_t w = 0; w < std::min(workers, n); ++w) {
      pool.emplace_back([&]() {
        while (true) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n) return;
          try {
            slots[i].emplace(fn(i));
          } catch (...) {
            errors[i] = std::current_exception();
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    for (const std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
  std::vector<R> out;
  out.reserve(n);
  for (std::optional<R>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace p4u::harness
