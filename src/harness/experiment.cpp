#include "harness/experiment.hpp"

#include <algorithm>

#include "control/segmentation.hpp"

namespace p4u::harness {

namespace {
constexpr sim::Time kIssueAt = sim::milliseconds(10);
constexpr sim::Time kRunUntil = sim::seconds(300);
}  // namespace

ExperimentResult run_single_flow(const net::Graph& g,
                                 const SingleFlowConfig& cfg) {
  ExperimentResult out;
  for (int run = 0; run < cfg.runs; ++run) {
    TestBedParams params = cfg.bed;
    params.seed = cfg.base_seed + static_cast<std::uint64_t>(run);
    params.trace_enabled = false;  // large sweeps: skip trace allocation
    TestBed bed(g, params);

    net::Flow f;
    f.ingress = cfg.old_path.front();
    f.egress = cfg.old_path.back();
    f.id = net::flow_id_of(f.ingress, f.egress);
    f.size = 1.0;
    bed.deploy_flow(f, cfg.old_path);
    bed.schedule_update_at(kIssueAt, f.id, cfg.new_path);
    bed.run(kRunUntil);

    const auto d = bed.flow_db().duration(f.id, 2);
    if (d) {
      out.update_times_ms.add(sim::to_ms(*d));
    } else {
      ++out.incomplete_runs;
    }
    out.alarms += bed.flow_db().total_alarms();
    out.violations.loops += bed.monitor().violations().loops;
    out.violations.blackholes += bed.monitor().violations().blackholes;
    out.violations.capacity += bed.monitor().violations().capacity;
    bed.collect_metrics();
    out.metrics.merge_from(bed.metrics());
  }
  return out;
}

ExperimentResult run_multi_flow(const net::Graph& g,
                                const MultiFlowConfig& cfg) {
  ExperimentResult out;
  for (int run = 0; run < cfg.runs; ++run) {
    const std::uint64_t seed = cfg.base_seed + static_cast<std::uint64_t>(run);
    sim::Rng traffic_rng(seed ^ 0x7AFF1Cull);
    const std::vector<TrafficFlow> flows =
        gravity_multiflow(g, traffic_rng, cfg.traffic);

    TestBedParams params = cfg.bed;
    params.seed = seed;
    params.trace_enabled = false;
    params.monitor_capacity =
        params.monitor_capacity || params.congestion_mode;
    TestBed bed(g, params);

    std::vector<std::pair<net::FlowId, net::Path>> batch;
    for (const TrafficFlow& tf : flows) {
      bed.deploy_flow(tf.flow, tf.old_path);
      batch.emplace_back(tf.flow.id, tf.new_path);
    }
    bed.schedule_batch_at(kIssueAt, std::move(batch));
    bed.run(kRunUntil);

    // Sample: completion time of the last flow update in the batch.
    bool all_done = true;
    sim::Time last = 0;
    for (const TrafficFlow& tf : flows) {
      const auto* rec = bed.flow_db().record(tf.flow.id, 2);
      if (rec == nullptr || rec->state != control::UpdateState::kCompleted) {
        all_done = false;
        break;
      }
      last = std::max(last, rec->completed_at);
    }
    if (all_done) {
      out.update_times_ms.add(sim::to_ms(last - kIssueAt));
    } else {
      ++out.incomplete_runs;
    }
    out.alarms += bed.flow_db().total_alarms();
    out.violations.loops += bed.monitor().violations().loops;
    out.violations.blackholes += bed.monitor().violations().blackholes;
    out.violations.capacity += bed.monitor().violations().capacity;
    bed.collect_metrics();
    out.metrics.merge_from(bed.metrics());
  }
  return out;
}

DetourPaths long_detour_paths(const net::Graph& g) {
  // §9.1: old and new paths "intentionally selected to traverse a long
  // distance within the topology and to trigger segmentation". Search all
  // node pairs and their k-shortest loopless paths for the longest
  // (old, new) pair whose segmentation contains a backward segment — the
  // entangled structure DL-P4Update targets (Fig. 1 writ large).
  const auto succ_on = [](const net::Path& p, net::NodeId n) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      if (p[i] == n) return p[i + 1];
    }
    return net::kNoNode;
  };
  DetourPaths best;
  double best_score = -1.0;
  for (std::size_t s = 0; s < g.node_count(); ++s) {
    for (std::size_t d = 0; d < g.node_count(); ++d) {
      if (s == d) continue;
      const auto ks = net::k_shortest_paths(
          g, static_cast<net::NodeId>(s), static_cast<net::NodeId>(d), 30,
          net::Metric::kHops);
      for (std::size_t a = 0; a < ks.size(); ++a) {
        for (std::size_t b = 0; b < ks.size(); ++b) {
          if (a == b) continue;
          const auto seg = control::segment_paths(ks[a], ks[b]);
          if (seg.all_forward() || seg.segments.size() < 2) continue;
          // Score the entanglement: inner nodes of backward segments are
          // what DL pre-installs while ez-Segway's in_loop machinery holds
          // them back; independent non-trivial segments give parallelism;
          // backward segments force coordination; length breaks ties.
          std::size_t nontrivial = 0, backward = 0, inner = 0,
                      backward_inner = 0;
          for (const auto& sgm : seg.segments) {
            const bool nt =
                sgm.nodes.size() > 2 ||
                succ_on(ks[a], sgm.ingress_gateway) != sgm.egress_gateway;
            if (!nt) continue;
            ++nontrivial;
            inner += sgm.nodes.size() - 2;
            if (!sgm.forward) {
              ++backward;
              backward_inner += sgm.nodes.size() - 2;
            }
          }
          if (backward < 1 || nontrivial < 3) continue;
          // Inner nodes only help where parallelism differs (backward
          // segments); inner nodes of one long forward segment serialize
          // identically in every system and are worth nothing.
          const double score =
              static_cast<double>(backward_inner) * 3000.0 +
              static_cast<double>(nontrivial) * 500.0 +
              static_cast<double>(backward) * 300.0 +
              static_cast<double>(seg.changed_rules) * 10.0 +
              static_cast<double>(ks[a].size() + ks[b].size());
          if (score > best_score) {
            best_score = score;
            best.old_path = ks[a];
            best.new_path = ks[b];
          }
        }
      }
    }
  }
  if (best_score > 0) return best;

  // Fallback for topologies without reversal pairs: the diameter pair's
  // shortest and 2nd-shortest paths.
  net::NodeId best_src = 0, best_dst = 0;
  double far = -1.0;
  for (std::size_t s = 0; s < g.node_count(); ++s) {
    const net::SpTree t =
        net::dijkstra(g, static_cast<net::NodeId>(s), net::Metric::kHops);
    for (std::size_t d = 0; d < g.node_count(); ++d) {
      if (t.dist[d] > far) {
        far = t.dist[d];
        best_src = static_cast<net::NodeId>(s);
        best_dst = static_cast<net::NodeId>(d);
      }
    }
  }
  const auto ks =
      net::k_shortest_paths(g, best_src, best_dst, 2, net::Metric::kHops);
  best.old_path = ks.front();
  best.new_path = ks.size() > 1 ? ks[1] : ks[0];
  return best;
}

}  // namespace p4u::harness
