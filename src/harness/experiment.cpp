#include "harness/experiment.hpp"

#include <memory>

#include "control/segmentation.hpp"

namespace p4u::harness {

ExperimentResult run_single_flow(const net::Graph& g,
                                 const SingleFlowConfig& cfg) {
  RunSpec spec;
  spec.slug = "single_flow";
  spec.family = ScenarioFamily::kSingleFlow;
  spec.graph = std::make_shared<net::Graph>(g);
  spec.old_path = cfg.old_path;
  spec.new_path = cfg.new_path;
  spec.bed = cfg.bed;
  spec.runs = cfg.runs;
  spec.base_seed = cfg.base_seed;
  Campaign campaign;
  campaign.add(std::move(spec));
  return std::move(campaign.run(/*jobs=*/1).front().result);
}

ExperimentResult run_multi_flow(const net::Graph& g,
                                const MultiFlowConfig& cfg) {
  RunSpec spec;
  spec.slug = "multi_flow";
  spec.family = ScenarioFamily::kMultiFlow;
  spec.graph = std::make_shared<net::Graph>(g);
  spec.traffic = cfg.traffic;
  spec.bed = cfg.bed;
  spec.runs = cfg.runs;
  spec.base_seed = cfg.base_seed;
  Campaign campaign;
  campaign.add(std::move(spec));
  return std::move(campaign.run(/*jobs=*/1).front().result);
}

DetourPaths long_detour_paths(const net::Graph& g) {
  // §9.1: old and new paths "intentionally selected to traverse a long
  // distance within the topology and to trigger segmentation". Search all
  // node pairs and their k-shortest loopless paths for the longest
  // (old, new) pair whose segmentation contains a backward segment — the
  // entangled structure DL-P4Update targets (Fig. 1 writ large).
  const auto succ_on = [](const net::Path& p, net::NodeId n) {
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      if (p[i] == n) return p[i + 1];
    }
    return net::kNoNode;
  };
  DetourPaths best;
  double best_score = -1.0;
  for (std::size_t s = 0; s < g.node_count(); ++s) {
    for (std::size_t d = 0; d < g.node_count(); ++d) {
      if (s == d) continue;
      const auto ks = net::k_shortest_paths(
          g, static_cast<net::NodeId>(s), static_cast<net::NodeId>(d), 30,
          net::Metric::kHops);
      for (std::size_t a = 0; a < ks.size(); ++a) {
        for (std::size_t b = 0; b < ks.size(); ++b) {
          if (a == b) continue;
          const auto seg = control::segment_paths(ks[a], ks[b]);
          if (seg.all_forward() || seg.segments.size() < 2) continue;
          // Score the entanglement: inner nodes of backward segments are
          // what DL pre-installs while ez-Segway's in_loop machinery holds
          // them back; independent non-trivial segments give parallelism;
          // backward segments force coordination; length breaks ties.
          std::size_t nontrivial = 0, backward = 0, inner = 0,
                      backward_inner = 0;
          for (const auto& sgm : seg.segments) {
            const bool nt =
                sgm.nodes.size() > 2 ||
                succ_on(ks[a], sgm.ingress_gateway) != sgm.egress_gateway;
            if (!nt) continue;
            ++nontrivial;
            inner += sgm.nodes.size() - 2;
            if (!sgm.forward) {
              ++backward;
              backward_inner += sgm.nodes.size() - 2;
            }
          }
          if (backward < 1 || nontrivial < 3) continue;
          // Inner nodes only help where parallelism differs (backward
          // segments); inner nodes of one long forward segment serialize
          // identically in every system and are worth nothing.
          const double score =
              static_cast<double>(backward_inner) * 3000.0 +
              static_cast<double>(nontrivial) * 500.0 +
              static_cast<double>(backward) * 300.0 +
              static_cast<double>(seg.changed_rules) * 10.0 +
              static_cast<double>(ks[a].size() + ks[b].size());
          if (score > best_score) {
            best_score = score;
            best.old_path = ks[a];
            best.new_path = ks[b];
          }
        }
      }
    }
  }
  if (best_score > 0) return best;

  // Fallback for topologies without reversal pairs: the diameter pair's
  // shortest and 2nd-shortest paths.
  net::NodeId best_src = 0, best_dst = 0;
  double far = -1.0;
  for (std::size_t s = 0; s < g.node_count(); ++s) {
    const net::SpTree t =
        net::dijkstra(g, static_cast<net::NodeId>(s), net::Metric::kHops);
    for (std::size_t d = 0; d < g.node_count(); ++d) {
      if (t.dist[d] > far) {
        far = t.dist[d];
        best_src = static_cast<net::NodeId>(s);
        best_dst = static_cast<net::NodeId>(d);
      }
    }
  }
  const auto ks =
      net::k_shortest_paths(g, best_src, best_dst, 2, net::Metric::kHops);
  best.old_path = ks.front();
  best.new_path = ks.size() > 1 ? ks[1] : ks[0];
  return best;
}

}  // namespace p4u::harness
