#include "harness/static_check.hpp"

namespace p4u::harness {

verify::FlowPlan build_static_plan(const StaticCheckCase& c) {
  verify::PlanInputs in;
  in.flow = c.flow;
  in.believed_old = c.believed_old;
  in.actual_from = c.actual_from;
  in.new_path = c.new_path;
  switch (c.system) {
    case SystemKind::kP4Update:
      return verify::plan_p4update(in, c.sl_node_budget, c.force_type);
    case SystemKind::kEzSegway:
      return verify::plan_ezsegway(in);
    case SystemKind::kCentral:
      return verify::plan_central(in);
  }
  return verify::plan_p4update(in, c.sl_node_budget, c.force_type);
}

verify::Verdict static_verdict(const StaticCheckCase& c,
                               const verify::VerifyOptions& opt) {
  return verify::verify_plan(build_static_plan(c), opt);
}

DynamicOutcome classify_dynamic(bool any_failure,
                                const std::string& failure_text) {
  if (!any_failure) return DynamicOutcome::kClean;
  if (failure_text.rfind("liveness", 0) == 0) {
    return DynamicOutcome::kLivenessOnly;
  }
  return DynamicOutcome::kLoopOrBlackhole;
}

bool verdicts_agree(const verify::Verdict& v, DynamicOutcome dynamic) {
  switch (v.kind) {
    case verify::VerdictKind::kSafe:
      // Safe must never coexist with an observed loop/blackhole; a stalled
      // (liveness-only) run is outside the verifier's scope.
      return dynamic != DynamicOutcome::kLoopOrBlackhole;
    case verify::VerdictKind::kUnsafe:
      // On an exhausted search, a reachable bad state must have been seen.
      return dynamic == DynamicOutcome::kLoopOrBlackhole;
    case verify::VerdictKind::kUnknown:
      return true;  // an honest refusal claims nothing
  }
  return false;
}

}  // namespace p4u::harness
