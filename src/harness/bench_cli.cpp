#include "harness/bench_cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace p4u::harness {

namespace {

/// Parses a full-string unsigned integer; false on garbage or overflow.
bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    if (v > (UINT64_MAX - static_cast<std::uint64_t>(c - '0')) / 10) {
      return false;
    }
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

bool parse_positive_int(const std::string& s, int& out) {
  std::uint64_t v = 0;
  if (!parse_u64(s, v) || v == 0 || v > 1'000'000) return false;
  out = static_cast<int>(v);
  return true;
}

/// Parses a full-string probability in [0, 1]; false on garbage.
bool parse_prob(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;
  out = v;
  return true;
}

/// A flag either consumes the next argv entry or carries "=value".
struct FlagValue {
  bool present = false;
  bool missing_value = false;
  std::string value;
};

FlagValue match_flag(const std::string& arg, const char* name, int& r,
                     int argc, char** argv) {
  FlagValue out;
  const std::string flag(name);
  if (arg == flag) {
    out.present = true;
    if (r + 1 >= argc) {
      out.missing_value = true;
    } else {
      out.value = argv[++r];
    }
    return out;
  }
  if (arg.rfind(flag + "=", 0) == 0) {
    out.present = true;
    out.value = arg.substr(flag.size() + 1);
    if (out.value.empty()) out.missing_value = true;
  }
  return out;
}

}  // namespace

int BenchCli::runs_or(int table_runs) const {
  if (runs) return *runs;
  if (smoke) return std::min(3, table_runs);
  return table_runs;
}

std::uint64_t BenchCli::seed_or(std::uint64_t table_seed) const {
  return seed ? *seed : table_seed;
}

std::string bench_cli_usage(const BenchCliSpec& spec) {
  std::string prog = spec.program.empty() ? "<bench>" : spec.program;
  std::string u = "usage: " + prog + " [--out <dir>]";
  if (spec.with_jobs) u += " [--jobs <N>]";
  if (spec.with_runs) u += " [--runs <N>] [--seed <S>]";
  if (spec.with_smoke) u += " [--smoke]";
  if (spec.with_shards) u += " [--shards <K>]";
  u += "\n";
  if (!spec.description.empty()) u += "  " + spec.description + "\n";
  u += "  --out <dir>   write a JSONL/CSV run report under <dir>\n";
  if (spec.with_jobs) {
    u += "  --jobs <N>    worker threads for seeded runs (default: all "
         "cores);\n                results are identical for every N\n";
  }
  if (spec.with_runs) {
    u += "  --runs <N>    override the per-spec run count\n";
    u += "  --seed <S>    override the per-spec base seed\n";
  }
  if (spec.with_smoke) {
    u += "  --smoke       quick pass: 3 runs per spec, no shape gating\n";
  }
  if (spec.with_faults) {
    u += "  --ctrl-drop <p>         drop each control message with prob p\n";
    u += "  --data-drop <p>         drop each data packet with prob p\n";
    u += "  --link-down <t:u-v:dur> down link u-v at t ms for dur ms "
         "(repeatable)\n";
  }
  if (spec.with_mc) {
    u += "  --strategy <seeded|explore>  event-ordering strategy\n";
    u += "  --replay <file>              re-execute a recorded schedule "
         "(forces --runs 1)\n";
    u += "  --max-depth <N>              bound the explorer's branch depth "
         "(explore only)\n";
  }
  if (spec.with_static_verify) {
    u += "  --static-verify              cross-check cells against the "
         "static plan verifier\n";
  }
  if (spec.with_shards) {
    u += "  --shards <K>  run each job on the K-way sharded engine "
         "(reports are\n                byte-identical for every K; --jobs "
         "is divided by K)\n";
  }
  for (const std::string& p : spec.passthrough_prefixes) {
    u += "  " + p + "*  passed through\n";
  }
  return u;
}

BenchCliResult parse_bench_cli(int& argc, char** argv,
                               const BenchCliSpec& spec) {
  BenchCliResult out;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    const std::string arg = argv[r];
    if (arg == "--help" || arg == "-h") {
      out.help = true;
      continue;
    }
    if (auto v = match_flag(arg, "--out", r, argc, argv); v.present) {
      if (v.missing_value) {
        out.error = "--out requires a directory";
        return out;
      }
      out.cli.out_dir = v.value;
      continue;
    }
    if (spec.with_jobs) {
      if (auto v = match_flag(arg, "--jobs", r, argc, argv); v.present) {
        if (v.missing_value || !parse_positive_int(v.value, out.cli.jobs)) {
          out.error = "--jobs requires a positive integer";
          return out;
        }
        continue;
      }
    }
    if (spec.with_runs) {
      if (auto v = match_flag(arg, "--runs", r, argc, argv); v.present) {
        int runs = 0;
        if (v.missing_value || !parse_positive_int(v.value, runs)) {
          out.error = "--runs requires a positive integer";
          return out;
        }
        out.cli.runs = runs;
        continue;
      }
      if (auto v = match_flag(arg, "--seed", r, argc, argv); v.present) {
        std::uint64_t seed = 0;
        if (v.missing_value || !parse_u64(v.value, seed)) {
          out.error = "--seed requires a non-negative integer";
          return out;
        }
        out.cli.seed = seed;
        continue;
      }
    }
    if (spec.with_smoke && arg == "--smoke") {
      out.cli.smoke = true;
      continue;
    }
    if (spec.with_faults) {
      if (auto v = match_flag(arg, "--ctrl-drop", r, argc, argv); v.present) {
        if (v.missing_value ||
            !parse_prob(v.value, out.cli.fault_plan.model.control_drop_prob)) {
          out.error = "--ctrl-drop requires a probability in [0, 1]";
          return out;
        }
        continue;
      }
      if (auto v = match_flag(arg, "--data-drop", r, argc, argv); v.present) {
        if (v.missing_value ||
            !parse_prob(v.value, out.cli.fault_plan.model.data_drop_prob)) {
          out.error = "--data-drop requires a probability in [0, 1]";
          return out;
        }
        continue;
      }
      if (auto v = match_flag(arg, "--link-down", r, argc, argv); v.present) {
        std::string err;
        if (v.missing_value ||
            !faults::parse_link_down_spec(v.value, out.cli.fault_plan, &err)) {
          out.error = err.empty()
                          ? "--link-down requires a t:u-v:dur spec"
                          : err;
          return out;
        }
        continue;
      }
    }
    if (spec.with_mc) {
      if (auto v = match_flag(arg, "--strategy", r, argc, argv); v.present) {
        if (v.missing_value ||
            (v.value != "seeded" && v.value != "explore")) {
          out.error = "--strategy must be 'seeded' or 'explore'";
          return out;
        }
        out.cli.strategy = v.value;
        continue;
      }
      if (auto v = match_flag(arg, "--replay", r, argc, argv); v.present) {
        if (v.missing_value) {
          out.error = "--replay requires a schedule file";
          return out;
        }
        out.cli.replay_path = v.value;
        continue;
      }
      if (auto v = match_flag(arg, "--max-depth", r, argc, argv); v.present) {
        int depth = 0;
        if (v.missing_value || !parse_positive_int(v.value, depth)) {
          out.error = "--max-depth requires a positive integer";
          return out;
        }
        out.cli.max_depth = depth;
        continue;
      }
    }
    if (spec.with_static_verify && arg == "--static-verify") {
      out.cli.static_verify = true;
      continue;
    }
    if (spec.with_shards) {
      if (auto v = match_flag(arg, "--shards", r, argc, argv); v.present) {
        if (v.missing_value || !parse_positive_int(v.value, out.cli.shards)) {
          out.error = "--shards requires a positive integer";
          return out;
        }
        continue;
      }
    }
    const bool passthrough =
        std::any_of(spec.passthrough_prefixes.begin(),
                    spec.passthrough_prefixes.end(),
                    [&arg](const std::string& p) {
                      return arg.rfind(p, 0) == 0;
                    });
    if (passthrough) {
      argv[w++] = argv[r];
      continue;
    }
    out.error = "unknown argument '" + arg + "'";
    return out;
  }
  // Cross-flag conflicts: checked after the loop so the diagnostics do not
  // depend on argument order.
  if (!out.cli.replay_path.empty()) {
    if (!out.cli.strategy.empty()) {
      out.error = "--replay and --strategy are mutually exclusive: a replay "
                  "fixes the schedule";
      return out;
    }
    if (out.cli.runs && *out.cli.runs > 1) {
      out.error = "--replay re-executes one recorded schedule: --runs must "
                  "be 1";
      return out;
    }
  }
  if (out.cli.max_depth && out.cli.strategy != "explore") {
    out.error = "--max-depth requires --strategy explore";
    return out;
  }
  if (out.cli.shards > 0) {
    if (!out.cli.strategy.empty()) {
      out.error = "--shards and --strategy are mutually exclusive: "
                  "strategies steer one global ready set";
      return out;
    }
    if (!out.cli.replay_path.empty()) {
      out.error = "--shards and --replay are mutually exclusive: a replay "
                  "re-executes one global schedule";
      return out;
    }
  }
  argc = w;
  return out;
}

BenchCli parse_bench_cli_or_exit(int& argc, char** argv,
                                 const BenchCliSpec& spec) {
  BenchCliSpec named = spec;
  if (named.program.empty() && argc > 0) named.program = argv[0];
  const BenchCliResult r = parse_bench_cli(argc, argv, named);
  if (r.help) {
    std::fputs(bench_cli_usage(named).c_str(), stdout);
    std::exit(0);
  }
  if (!r.error.empty()) {
    std::fprintf(stderr, "%s: %s\n%s", named.program.c_str(), r.error.c_str(),
                 bench_cli_usage(named).c_str());
    std::exit(2);
  }
  return r.cli;
}

}  // namespace p4u::harness
