// Shared command-line interface of the bench binaries and examples.
//
// Replaces the old ad-hoc obs::parse_out_dir: every flag is validated (a
// trailing `--out` with no value and any unknown flag are hard usage
// errors instead of silent drops), and all benches speak the same dialect:
//
//   --out <dir>   write a JSONL/CSV run report under <dir>
//   --jobs <N>    run seeded jobs on N worker threads (default: all cores)
//   --runs <N>    override each spec's run count
//   --seed <S>    override each spec's base seed
//   --smoke       quick end-to-end pass: 3 runs/spec, no shape gating
//
// Flags a binary does not support (spec.with_*) are rejected as unknown.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"

namespace p4u::harness {

/// Which flags a binary accepts, plus its usage header.
struct BenchCliSpec {
  std::string program;      // shown in usage; argv[0] used when empty
  std::string description;  // one-liner under the usage header
  bool with_jobs = true;
  bool with_runs = true;    // enables both --runs and --seed
  bool with_smoke = true;
  /// Enables the failure-domain flags: --ctrl-drop, --data-drop, and
  /// repeatable --link-down t:u-v:dur (all collected into cli.fault_plan).
  bool with_faults = false;
  /// Enables the model-checking flags: --strategy <seeded|explore>,
  /// --replay <schedule.json>, --max-depth <N>. Conflicting combinations
  /// (--replay with --strategy, --replay with --runs > 1, --max-depth
  /// without --strategy explore) are hard usage errors.
  bool with_mc = false;
  /// Enables --static-verify: cross-check every cell against the static
  /// update-plan verifier (DESIGN.md §12) and gate on verdict agreement.
  bool with_static_verify = false;
  /// Enables --shards <K>: run each seeded job on the K-way sharded
  /// parallel engine (DESIGN.md §13). Conflicts with --strategy and
  /// --replay (strategies steer one global ready set) are hard usage
  /// errors; the campaign divides --jobs by K so the core budget holds.
  bool with_shards = false;
  /// Arguments starting with one of these prefixes are left in argv for a
  /// downstream parser (e.g. "--benchmark" for google-benchmark).
  std::vector<std::string> passthrough_prefixes;
};

struct BenchCli {
  std::string out_dir;               // empty = no report
  int jobs = 0;                      // 0 = every core
  std::optional<int> runs;           // --runs override
  std::optional<std::uint64_t> seed; // --seed override
  bool smoke = false;
  /// Fault knobs collected from --ctrl-drop / --data-drop / --link-down
  /// (with_faults only). Benches merge this into their TestBedParams.
  faults::FaultPlan fault_plan;
  /// Model-checking knobs (with_mc only). `strategy` is "seeded",
  /// "explore", or empty (the bench's default); `replay_path` names a
  /// recorded schedule to re-execute (mutually exclusive with --strategy
  /// and with --runs > 1); `max_depth` bounds the explorer's branch depth.
  std::string strategy;
  std::string replay_path;
  std::optional<int> max_depth;
  /// --static-verify (with_static_verify only): run the static verifier
  /// alongside the dynamic cells and fail on any verdict disagreement.
  bool static_verify = false;
  /// --shards <K> (with_shards only): 0 = the legacy single-threaded
  /// engine; K >= 1 = the sharded engine with K workers per job.
  int shards = 0;

  /// Run count for a spec whose table default is `table_runs`: an explicit
  /// --runs wins, then --smoke caps at 3, else the table value.
  [[nodiscard]] int runs_or(int table_runs) const;
  /// Base seed for a spec whose table default is `table_seed`.
  [[nodiscard]] std::uint64_t seed_or(std::uint64_t table_seed) const;
};

struct BenchCliResult {
  BenchCli cli;
  bool help = false;   // --help / -h was given
  std::string error;   // empty = parse succeeded
};

/// Renders the usage text for `spec`.
std::string bench_cli_usage(const BenchCliSpec& spec);

/// Parses and strips the shared flags from argv (compacting it in place,
/// argc updated). On success only argv[0] and passthrough arguments
/// remain. Never exits: errors (unknown flag, missing or malformed value,
/// stray positional argument) are reported in `error`.
BenchCliResult parse_bench_cli(int& argc, char** argv,
                               const BenchCliSpec& spec);

/// parse_bench_cli, with the usual main() behavior: on --help prints usage
/// and exits 0; on error prints the error plus usage to stderr and exits 2.
BenchCli parse_bench_cli_or_exit(int& argc, char** argv,
                                 const BenchCliSpec& spec);

}  // namespace p4u::harness
