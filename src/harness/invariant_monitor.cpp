#include "harness/invariant_monitor.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace p4u::harness {

std::vector<net::FlowId> InvariantMonitor::watched_ids_sorted() const {
  std::vector<net::FlowId> ids;
  ids.reserve(flows_.size());
  // p4u-detlint: allow(unordered-iter) key harvest only; ids are sorted before use
  for (const auto& [id, flow] : flows_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void InvariantMonitor::attach() {
  if (!handle_.active()) handle_ = fabric_->subscribe(this);
}

void InvariantMonitor::on_rule_installed(net::NodeId node, net::FlowId flow,
                                         std::int32_t port) {
  (void)node;
  (void)port;
  if (flows_.count(flow) != 0) check_flow(flow);
}

void InvariantMonitor::on_link_state(net::LinkId link, net::NodeId a,
                                     net::NodeId b, bool up) {
  (void)a;
  (void)b;
  if (up) return;
  // This fires before the fabric downs the link, so the walk below still
  // sees the pre-fault path: flows routed over the link get excused.
  for (const net::FlowId id : watched_ids_sorted()) {
    const std::vector<net::NodeId> walk = walk_nodes(id);
    for (std::size_t i = 0; i + 1 < walk.size(); ++i) {
      const auto hop = fabric_->graph().find_link(walk[i], walk[i + 1]);
      if (hop && *hop == link) {
        excused_.insert(id);
        break;
      }
    }
  }
}

void InvariantMonitor::on_switch_state(net::NodeId node, bool up) {
  if (up) return;
  for (const net::FlowId id : watched_ids_sorted()) {
    const std::vector<net::NodeId> walk = walk_nodes(id);
    if (std::find(walk.begin(), walk.end(), node) != walk.end()) {
      excused_.insert(id);
    }
  }
}

std::vector<net::NodeId> InvariantMonitor::walk_nodes(net::FlowId flow) const {
  std::vector<net::NodeId> walk;
  auto it = flows_.find(flow);
  if (it == flows_.end()) return walk;
  std::set<net::NodeId> visited;
  net::NodeId cur = it->second.ingress;
  while (visited.insert(cur).second) {
    walk.push_back(cur);
    const auto port = fabric_->sw(cur).lookup(flow);
    if (!port || *port == p4rt::SwitchDevice::kLocalPort) break;
    const net::NodeId next = fabric_->graph().neighbor_via(cur, *port);
    if (next == net::kNoNode) break;
    cur = next;
  }
  return walk;
}

bool InvariantMonitor::has_loop(net::FlowId flow) const {
  // The per-flow forwarding graph is functional (<=1 successor per node);
  // iterate with visited-coloring to find any cycle.
  const auto n = fabric_->switch_count();
  std::vector<std::uint8_t> color(n, 0);  // 0 unvisited, 1 in walk, 2 done
  for (std::size_t start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    std::vector<std::size_t> walk;
    std::size_t cur = start;
    for (;;) {
      if (color[cur] == 1) {
        for (std::size_t w : walk) color[w] = 2;
        return true;  // re-entered the current walk: cycle
      }
      if (color[cur] == 2) break;
      color[cur] = 1;
      walk.push_back(cur);
      const auto port = fabric_->sw(static_cast<net::NodeId>(cur)).lookup(flow);
      if (!port || *port == p4rt::SwitchDevice::kLocalPort) break;
      const net::NodeId next = fabric_->graph().neighbor_via(
          static_cast<net::NodeId>(cur), *port);
      if (next == net::kNoNode) break;
      cur = static_cast<std::size_t>(next);
    }
    for (std::size_t w : walk) color[w] = 2;
  }
  return false;
}

bool InvariantMonitor::has_blackhole(net::FlowId flow) const {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return false;
  std::set<net::NodeId> visited;
  net::NodeId cur = it->second.ingress;
  while (visited.insert(cur).second) {
    const auto port = fabric_->sw(cur).lookup(flow);
    if (!port) return true;  // a reachable node without a rule
    if (*port == p4rt::SwitchDevice::kLocalPort) return false;  // delivered
    const net::NodeId next = fabric_->graph().neighbor_via(cur, *port);
    if (next == net::kNoNode) return true;  // rule points nowhere
    cur = next;
  }
  return false;  // looped: reported by has_loop, not as a blackhole
}

InvariantMonitor::WalkEnd InvariantMonitor::walk_flow(net::FlowId flow) const {
  auto it = flows_.find(flow);
  if (it == flows_.end()) return WalkEnd::kDelivered;
  std::set<net::NodeId> visited;
  net::NodeId cur = it->second.ingress;
  while (visited.insert(cur).second) {
    if (!fabric_->switch_is_up(cur)) return WalkEnd::kFaulted;
    const auto port = fabric_->sw(cur).lookup(flow);
    if (!port) return WalkEnd::kBlackhole;
    if (*port == p4rt::SwitchDevice::kLocalPort) return WalkEnd::kDelivered;
    const auto& adj = fabric_->graph().neighbors(cur);
    if (*port < 0 || static_cast<std::size_t>(*port) >= adj.size()) {
      return WalkEnd::kBlackhole;  // rule points nowhere
    }
    const auto& edge = adj[static_cast<std::size_t>(*port)];
    if (!fabric_->link_is_up(edge.link)) return WalkEnd::kFaulted;
    cur = edge.neighbor;
  }
  return WalkEnd::kLoop;
}

std::vector<std::string> InvariantMonitor::capacity_overloads() const {
  // Aggregate per directed edge: sum of watched-flow sizes routed over it.
  // Flow order fixes the float accumulation order, so iterate sorted ids —
  // hash order would make near-capacity verdicts depend on insertion
  // history.
  std::map<std::pair<net::NodeId, net::NodeId>, double> load;
  for (const net::FlowId id : watched_ids_sorted()) {
    const net::Flow& flow = flows_.at(id);
    for (std::size_t n = 0; n < fabric_->switch_count(); ++n) {
      const auto node = static_cast<net::NodeId>(n);
      const auto port = fabric_->sw(node).lookup(id);
      if (!port || *port == p4rt::SwitchDevice::kLocalPort) continue;
      const net::NodeId next = fabric_->graph().neighbor_via(node, *port);
      if (next == net::kNoNode) continue;
      load[{node, next}] += flow.size;
    }
  }
  std::vector<std::string> out;
  for (const auto& [edge, used] : load) {
    const auto link = fabric_->graph().find_link(edge.first, edge.second);
    if (!link) continue;
    const double cap = fabric_->graph().link(*link).capacity;
    if (used > cap + 1e-9) {
      std::ostringstream os;
      os << "link " << edge.first << "->" << edge.second << " load " << used
         << " > capacity " << cap;
      out.push_back(os.str());
    }
  }
  return out;
}

void InvariantMonitor::check_flow(net::FlowId flow) {
  const sim::Time now = fabric_->simulator().now();
  if (has_loop(flow)) {
    // Loops are always the update system's fault — no physical failure
    // writes a cyclic rule set — so faults never excuse them.
    ++violations_.loops;
    fabric_->trace().add(
        {now, sim::TraceKind::kLoopDetected, -1, flow, 0, 0, "monitor"});
    findings_.push_back("loop in flow " + std::to_string(flow) + " at t=" +
                        std::to_string(sim::to_ms(now)) + "ms");
  }
  switch (walk_flow(flow)) {
    case WalkEnd::kDelivered:
      excused_.erase(flow);  // a clean walk ends the fault excuse
      break;
    case WalkEnd::kFaulted:
      // The physical fault, not the update logic, broke this walk.
      ++violations_.faulted_walks;
      excused_.insert(flow);
      break;
    case WalkEnd::kBlackhole:
      if (excused_.count(flow) != 0) {
        ++violations_.faulted_walks;
        fabric_->trace().add({now, sim::TraceKind::kInfo, -1, flow, 0, 0,
                              "monitor: blackhole excused by fault"});
      } else {
        ++violations_.blackholes;
        fabric_->trace().add({now, sim::TraceKind::kBlackholeDetected, -1,
                              flow, 0, 0, "monitor"});
        findings_.push_back("blackhole in flow " + std::to_string(flow) +
                            " at t=" + std::to_string(sim::to_ms(now)) + "ms");
      }
      break;
    case WalkEnd::kLoop:
      break;  // counted above
  }
  if (check_capacity_) {
    for (const std::string& f : capacity_overloads()) {
      ++violations_.capacity;
      fabric_->trace().add(
          {now, sim::TraceKind::kCapacityViolated, -1, flow, 0, 0, f});
      findings_.push_back(f + " at t=" + std::to_string(sim::to_ms(now)) +
                          "ms");
    }
  }
}

void InvariantMonitor::export_violations(obs::MetricsRegistry& m) const {
  const std::pair<const char*, std::uint64_t> kinds[] = {
      {"loop", violations_.loops},
      {"blackhole", violations_.blackholes},
      {"capacity", violations_.capacity},
  };
  for (const auto& [kind, total] : kinds) {
    obs::Counter c = m.counter("monitor.violation", {{"kind", kind}});
    if (total > c.value()) c.inc(total - c.value());
  }
  obs::Counter fw = m.counter("monitor.faulted_walks");
  if (violations_.faulted_walks > fw.value()) {
    fw.inc(violations_.faulted_walks - fw.value());
  }
}

void InvariantMonitor::check_all() {
  // Sorted order: findings_ and trace entries are emitted here, and their
  // order is part of the deterministic-report contract.
  for (const net::FlowId id : watched_ids_sorted()) check_flow(id);
}

}  // namespace p4u::harness
