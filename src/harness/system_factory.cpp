#include "harness/system_factory.hpp"

#include <stdexcept>

#include "baselines/central_controller.hpp"
#include "baselines/central_switch.hpp"
#include "baselines/ezsegway_controller.hpp"
#include "baselines/ezsegway_switch.hpp"
#include "core/p4update_controller.hpp"
#include "core/p4update_switch.hpp"
#include "p4rt/control_channel.hpp"
#include "p4rt/fabric.hpp"
#include "sim/event_queue.hpp"

namespace p4u::harness {

const char* to_string(SystemKind k) {
  switch (k) {
    case SystemKind::kP4Update: return "P4Update";
    case SystemKind::kEzSegway: return "ez-Segway";
    case SystemKind::kCentral: return "Central";
  }
  return "?";
}

// --- SystemAdapter: ticketed submission over the admission queue ---

void SystemAdapter::init_submission(const SystemContext& ctx) {
  recovery_ = ctx.params.recovery;
  admission_ = std::make_unique<control::AdmissionQueue>(
      mutable_flow_db(), ctx.params.admission);
  admission_->set_clock([sim = &ctx.sim] { return sim->now(); });
  admission_->set_dispatch(
      [this](net::FlowId flow, const net::Path& path) {
        return dispatch_update(flow, path);
      });
}

Ticket SystemAdapter::submit(const UpdateRequest& req) {
  const control::RequestId id =
      admission_->submit(req.flow, req.kind, req.new_path);
  const control::RequestRecord* rec = mutable_flow_db().request(id);
  return Ticket{id, req.flow, rec ? rec->version : 0,
                rec ? rec->submitted_at : 0};
}

std::vector<Ticket> SystemAdapter::submit_batch(
    const std::vector<UpdateRequest>& batch) {
  prepare_batch(batch);
  std::vector<Ticket> tickets;
  tickets.reserve(batch.size());
  for (const UpdateRequest& req : batch) tickets.push_back(submit(req));
  return tickets;
}

Ticket SystemAdapter::note_instant(net::FlowId flow,
                                   control::RequestKind kind) {
  const control::RequestId id = admission_->note_instant(flow, kind);
  const control::RequestRecord* rec = mutable_flow_db().request(id);
  return Ticket{id, flow, rec ? rec->version : 0, rec ? rec->submitted_at : 0};
}

const control::RequestRecord* SystemAdapter::request(
    control::RequestId id) const {
  return const_cast<SystemAdapter*>(this)->mutable_flow_db().request(id);
}

namespace {

class P4UpdateAdapter final : public SystemAdapter {
 public:
  explicit P4UpdateAdapter(const SystemContext& ctx) : metrics_(nullptr) {
    core::P4UpdateSwitchParams sp;
    sp.congestion_mode = ctx.params.congestion_mode;
    sp.allow_consecutive_dual = ctx.params.allow_consecutive_dual;
    sp.wait_timeout = ctx.params.p4u_wait_timeout;
    sp.uim_watchdog = ctx.params.p4u_uim_watchdog;
    sp.expected_flows = ctx.params.expected_flows_per_switch;
    for (std::size_t n = 0; n < ctx.graph.node_count(); ++n) {
      auto pipe = std::make_unique<core::P4UpdateSwitch>(
          static_cast<net::NodeId>(n), ctx.graph, sp);
      ctx.fabric.sw(static_cast<net::NodeId>(n)).set_pipeline(pipe.get());
      switches_.push_back(std::move(pipe));
    }
    core::P4UpdateControllerParams cp;
    cp.congestion_mode = ctx.params.congestion_mode;
    cp.force_type = ctx.params.force_type;
    cp.allow_consecutive_dual = ctx.params.allow_consecutive_dual;
    cp.enable_retrigger = ctx.params.enable_retrigger;
    cp.static_preflight = ctx.params.static_preflight;
    cp.enforce_preflight = ctx.params.enforce_preflight;
    cp.measure_prep_wallclock = ctx.params.measure_prep_wallclock;
    cp.recovery = ctx.params.recovery;
    ctrl_ = std::make_unique<core::P4UpdateController>(
        ctx.channel, control::Nib(ctx.graph), cp);
    if (ctx.params.expected_flows > 0) {
      ctrl_->nib().reserve(ctx.params.expected_flows);
      ctrl_->flow_db().reserve(ctx.params.expected_flows);
    }
    metrics_ = &ctx.channel.metrics();
    init_submission(ctx);
    ctrl_->on_settled = [this](net::FlowId f, p4rt::Version v,
                               control::UpdateOutcome o, sim::Time) {
      settled(f, v, o);
    };
  }

  void bootstrap_flow_hop(p4rt::SwitchDevice& sw, const net::Flow& f,
                          p4rt::Distance dist, std::int32_t port) override {
    switches_[static_cast<std::size_t>(sw.id())]->bootstrap_flow(
        sw, f.id, /*version=*/1, dist, port, f.size);
  }
  void register_flow(const net::Flow& f, const net::Path& path) override {
    ctrl_->register_flow(f, path);
  }
  [[nodiscard]] const control::FlowDb& flow_db() const override {
    return ctrl_->flow_db();
  }
  [[nodiscard]] control::Nib& nib() override { return ctrl_->nib(); }

  [[nodiscard]] PreflightCounters preflight_counters() const override {
    return PreflightCounters{
        metrics_->counter_total("ctrl.preflight_safe"),
        metrics_->counter_total("ctrl.preflight_unsafe"),
        metrics_->counter_total("ctrl.preflight_unknown"),
        metrics_->counter_total("ctrl.preflight_skipped")};
  }

  void collect_metrics(obs::MetricsRegistry& m) override {
    // Tops a counter up to `total` (collect may run more than once per bed).
    const auto top_up = [&m](const char* name, const obs::LabelSet& labels,
                             std::uint64_t total) {
      auto c = m.counter(name, labels);
      if (total > c.value()) c.inc(total - c.value());
    };
    for (const auto& pipe : switches_) {
      const obs::LabelSet self{{"switch", std::to_string(pipe->id())}};
      top_up("uib.register_reads", self, pipe->uib().register_reads());
      top_up("uib.register_writes", self, pipe->uib().register_writes());
      top_up("p4update.unms_sent", self, pipe->unms_sent());
      top_up("p4update.resubmissions", self, pipe->resubmissions());
      top_up("p4update.rejects", self, pipe->rejects());
    }
  }

  [[nodiscard]] core::P4UpdateController* as_p4update() override {
    return ctrl_.get();
  }
  [[nodiscard]] core::P4UpdateSwitch* p4update_switch(net::NodeId n) override {
    return switches_.at(static_cast<std::size_t>(n)).get();
  }

 protected:
  control::DispatchResult dispatch_update(net::FlowId flow,
                                          const net::Path& path) override {
    // 0 means enforce_preflight refused the plan: nothing was issued.
    const p4rt::Version v = ctrl_->schedule_update(flow, path);
    return control::DispatchResult{v, v != 0};
  }
  [[nodiscard]] control::FlowDb& mutable_flow_db() override {
    return ctrl_->flow_db();
  }

 private:
  std::vector<std::unique_ptr<core::P4UpdateSwitch>> switches_;
  std::unique_ptr<core::P4UpdateController> ctrl_;
  obs::MetricsRegistry* metrics_;
};

class EzSegwayAdapter final : public SystemAdapter {
 public:
  explicit EzSegwayAdapter(const SystemContext& ctx) {
    baseline::EzSwitchParams sp;
    sp.congestion_mode = ctx.params.congestion_mode;
    for (std::size_t n = 0; n < ctx.graph.node_count(); ++n) {
      auto pipe = std::make_unique<baseline::EzSegwaySwitch>(
          static_cast<net::NodeId>(n), ctx.graph, sp);
      ctx.fabric.sw(static_cast<net::NodeId>(n)).set_pipeline(pipe.get());
      switches_.push_back(std::move(pipe));
    }
    baseline::EzControllerParams cp;
    cp.congestion_mode = ctx.params.congestion_mode;
    cp.recovery = ctx.params.recovery;
    ctrl_ = std::make_unique<baseline::EzSegwayController>(
        ctx.channel, control::Nib(ctx.graph), cp);
    init_submission(ctx);
    ctrl_->on_settled = [this](net::FlowId f, p4rt::Version v,
                               control::UpdateOutcome o, sim::Time) {
      settled(f, v, o);
    };
  }

  void bootstrap_flow_hop(p4rt::SwitchDevice& sw, const net::Flow& f,
                          p4rt::Distance dist, std::int32_t port) override {
    (void)dist;  // ez-Segway keeps no distance labels
    switches_[static_cast<std::size_t>(sw.id())]->bootstrap_flow(sw, f.id,
                                                                 port, f.size);
  }
  void register_flow(const net::Flow& f, const net::Path& path) override {
    ctrl_->register_flow(f, path);
  }
  [[nodiscard]] const control::FlowDb& flow_db() const override {
    return ctrl_->flow_db();
  }
  [[nodiscard]] control::Nib& nib() override { return ctrl_->nib(); }
  [[nodiscard]] baseline::EzSegwayController* as_ezsegway() override {
    return ctrl_.get();
  }

 protected:
  control::DispatchResult dispatch_update(net::FlowId flow,
                                          const net::Path& path) override {
    // 0 means ez queued the request internally behind the flow's in-flight
    // update (§4.2) — accepted, version assigned on issue.
    return control::DispatchResult{ctrl_->schedule_update(flow, path), true};
  }
  void prepare_batch(const std::vector<UpdateRequest>& batch) override {
    std::vector<std::pair<net::FlowId, net::Path>> updates;
    updates.reserve(batch.size());
    for (const UpdateRequest& req : batch)
      updates.emplace_back(req.flow, req.new_path);
    ctrl_->prepare_batch(updates);
  }
  [[nodiscard]] control::FlowDb& mutable_flow_db() override {
    return ctrl_->flow_db();
  }

 private:
  std::vector<std::unique_ptr<baseline::EzSegwaySwitch>> switches_;
  std::unique_ptr<baseline::EzSegwayController> ctrl_;
};

class CentralAdapter final : public SystemAdapter {
 public:
  explicit CentralAdapter(const SystemContext& ctx) {
    baseline::CentralParams cp;
    cp.congestion_mode = ctx.params.congestion_mode;
    cp.recovery = ctx.params.recovery;
    for (std::size_t n = 0; n < ctx.graph.node_count(); ++n) {
      auto pipe =
          std::make_unique<baseline::CentralSwitch>(static_cast<net::NodeId>(n));
      ctx.fabric.sw(static_cast<net::NodeId>(n)).set_pipeline(pipe.get());
      switches_.push_back(std::move(pipe));
    }
    ctrl_ = std::make_unique<baseline::CentralController>(
        ctx.channel, control::Nib(ctx.graph), cp);
    init_submission(ctx);
    ctrl_->on_settled = [this](net::FlowId f, p4rt::Version v,
                               control::UpdateOutcome o, sim::Time) {
      settled(f, v, o);
    };
  }

  void bootstrap_flow_hop(p4rt::SwitchDevice& sw, const net::Flow& f,
                          p4rt::Distance dist, std::int32_t port) override {
    (void)dist;
    switches_[static_cast<std::size_t>(sw.id())]->bootstrap_flow(sw, f.id,
                                                                 port);
  }
  void register_flow(const net::Flow& f, const net::Path& path) override {
    ctrl_->register_flow(f, path);
  }
  [[nodiscard]] const control::FlowDb& flow_db() const override {
    return ctrl_->flow_db();
  }
  [[nodiscard]] control::Nib& nib() override { return ctrl_->nib(); }
  [[nodiscard]] baseline::CentralController* as_central() override {
    return ctrl_.get();
  }

 protected:
  control::DispatchResult dispatch_update(net::FlowId flow,
                                          const net::Path& path) override {
    return control::DispatchResult{ctrl_->schedule_update(flow, path), true};
  }
  [[nodiscard]] control::FlowDb& mutable_flow_db() override {
    return ctrl_->flow_db();
  }

 private:
  std::vector<std::unique_ptr<baseline::CentralSwitch>> switches_;
  std::unique_ptr<baseline::CentralController> ctrl_;
};

}  // namespace

SystemFactory::SystemFactory() {
  entries_.emplace_back(
      SystemKind::kP4Update,
      Entry{"P4Update", [](const SystemContext& ctx) {
              return std::unique_ptr<SystemAdapter>(new P4UpdateAdapter(ctx));
            }});
  entries_.emplace_back(
      SystemKind::kEzSegway,
      Entry{"ez-Segway", [](const SystemContext& ctx) {
              return std::unique_ptr<SystemAdapter>(new EzSegwayAdapter(ctx));
            }});
  entries_.emplace_back(
      SystemKind::kCentral,
      Entry{"Central", [](const SystemContext& ctx) {
              return std::unique_ptr<SystemAdapter>(new CentralAdapter(ctx));
            }});
}

SystemFactory& SystemFactory::instance() {
  static SystemFactory factory;
  return factory;
}

void SystemFactory::register_system(SystemKind kind, std::string name,
                                    FactoryFn fn) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [k, entry] : entries_) {
    if (k == kind) {
      entry = Entry{std::move(name), std::move(fn)};
      return;
    }
  }
  entries_.emplace_back(kind, Entry{std::move(name), std::move(fn)});
}

std::unique_ptr<SystemAdapter> SystemFactory::create(
    SystemKind kind, const SystemContext& ctx) const {
  FactoryFn fn;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [k, entry] : entries_) {
      if (k == kind) {
        fn = entry.fn;
        break;
      }
    }
  }
  if (!fn) {
    throw std::logic_error(std::string("SystemFactory: no system registered "
                                       "for kind '") +
                           to_string(kind) + "'");
  }
  return fn(ctx);
}

std::vector<std::pair<SystemKind, std::string>> SystemFactory::registered()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<SystemKind, std::string>> out;
  out.reserve(entries_.size());
  for (const auto& [k, entry] : entries_) out.emplace_back(k, entry.name);
  return out;
}

}  // namespace p4u::harness
