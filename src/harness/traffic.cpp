#include "harness/traffic.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace p4u::harness {

std::vector<double> gravity_sizes(
    std::size_t n_nodes,
    const std::vector<std::pair<net::NodeId, net::NodeId>>& pairs,
    sim::Rng& rng) {
  // Roughan's gravity model: traffic(i, j) ~ w_out(i) * w_in(j), with node
  // weights drawn from an exponential distribution (heavy-ish tail).
  std::vector<double> w_out(n_nodes), w_in(n_nodes);
  for (std::size_t i = 0; i < n_nodes; ++i) {
    w_out[i] = rng.exponential(1.0);
    w_in[i] = rng.exponential(1.0);
  }
  std::vector<double> sizes;
  sizes.reserve(pairs.size());
  for (const auto& [src, dst] : pairs) {
    sizes.push_back(w_out[static_cast<std::size_t>(src)] *
                    w_in[static_cast<std::size_t>(dst)]);
  }
  return sizes;
}

double peak_utilization(const net::Graph& g,
                        const std::vector<TrafficFlow>& flows, bool use_new) {
  std::map<std::pair<net::NodeId, net::NodeId>, double> load;
  for (const TrafficFlow& tf : flows) {
    const net::Path& p = use_new ? tf.new_path : tf.old_path;
    for (std::size_t i = 0; i + 1 < p.size(); ++i) {
      load[{p[i], p[i + 1]}] += tf.flow.size;
    }
  }
  double peak = 0.0;
  for (const auto& [edge, used] : load) {
    const auto link = g.find_link(edge.first, edge.second);
    if (!link) throw std::logic_error("peak_utilization: path off graph");
    peak = std::max(peak, used / g.link(*link).capacity);
  }
  return peak;
}

std::vector<TrafficFlow> gravity_multiflow(const net::Graph& g, sim::Rng& rng,
                                           const TrafficParams& params) {
  const auto n = g.node_count();
  if (n < 3) throw std::invalid_argument("gravity_multiflow: graph too small");

  for (int attempt = 0; attempt < params.max_retries; ++attempt) {
    std::vector<TrafficFlow> flows;
    std::vector<std::pair<net::NodeId, net::NodeId>> pairs;
    bool ok = true;
    for (std::size_t i = 0; i < n && ok; ++i) {
      const auto src = static_cast<net::NodeId>(i);
      // Uniform random destination != src with a usable 2nd-shortest path.
      net::NodeId dst = net::kNoNode;
      net::Path old_path, new_path;
      for (int tries = 0; tries < 32; ++tries) {
        const auto cand = static_cast<net::NodeId>(rng.uniform(n));
        if (cand == src) continue;
        const auto ks = net::k_shortest_paths(g, src, cand, 2, params.metric);
        if (ks.size() < 2) continue;
        dst = cand;
        old_path = ks[0];
        new_path = ks[1];
        break;
      }
      if (dst == net::kNoNode) {
        ok = false;
        break;
      }
      TrafficFlow tf;
      tf.flow.id = net::flow_id_of(src, dst) ^ (static_cast<std::uint64_t>(i) << 48);
      tf.flow.ingress = src;
      tf.flow.egress = dst;
      tf.old_path = std::move(old_path);
      tf.new_path = std::move(new_path);
      flows.push_back(std::move(tf));
      pairs.emplace_back(src, dst);
    }
    if (!ok) continue;

    const std::vector<double> sizes =
        gravity_sizes(n, pairs, rng);
    for (std::size_t i = 0; i < flows.size(); ++i) {
      flows[i].flow.size = sizes[i];
    }
    // Scale so the busiest directed link under either configuration runs at
    // the target utilization; both endpoint configurations stay feasible.
    const double peak = std::max(peak_utilization(g, flows, false),
                                 peak_utilization(g, flows, true));
    if (peak <= 0.0) continue;
    const double scale = params.target_utilization / peak;
    for (TrafficFlow& tf : flows) tf.flow.size *= scale;
    return flows;
  }
  throw std::runtime_error("gravity_multiflow: no feasible workload found");
}

}  // namespace p4u::harness
