// Fixture: the sanctioned shape for threading outside the parallel-engine
// allowlist — a single annotated primitive declaration whose reason names
// what it guards, plus lock sites that mention the type only in template-
// argument position (never flagged; the declaration is the containment
// point). This file must lint clean and the annotation must register.
#include <mutex>
#include <vector>

namespace fixture {

class Registry {
 public:
  void add(int v) {
    const std::lock_guard<std::mutex> lock(mu_);
    values_.push_back(v);
  }

  std::vector<int> snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return values_;
  }

 private:
  // p4u-detlint: allow(thread-containment) fixture: registry guard shared by worker threads; protects values_ only
  mutable std::mutex mu_;
  std::vector<int> values_;
};

}  // namespace fixture
