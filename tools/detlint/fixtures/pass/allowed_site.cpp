// Fixture: every banned construct appears once, each carrying a correctly
// formed allow annotation — this file must lint clean, and the annotations
// must all register as used.
#include <chrono>
#include <cstdlib>
#include <unordered_map>

namespace fixture {

double wallclock_ms() {
  // p4u-detlint: allow(wall-clock) fixture exercising same-line suppression
  const auto t = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t.time_since_epoch())
      .count();
}

int annotated_rand() {
  // p4u-detlint: allow(raw-rand) fixture exercising line-above suppression
  return rand();
}

const char* annotated_env() {
  const char* home = std::getenv("HOME");  // p4u-detlint: allow(env-read) fixture: same-line trailing annotation
  return home;
}

std::unordered_map<int, int> table;

int annotated_iteration() {
  int sum = 0;
  // p4u-detlint: allow(unordered-iter) order-independent integer sum
  for (const auto& [k, v] : table) sum += v;
  return sum;
}

// Multiple rules in one annotation:
long combined() {
  // p4u-detlint: allow(wall-clock,raw-rand) fixture: multi-rule allow list
  return std::chrono::system_clock::now().time_since_epoch().count() + rand();
}

}  // namespace fixture
