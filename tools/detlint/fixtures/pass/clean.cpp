// Fixture: determinism-clean translation unit. Everything here is the
// sanctioned way to do what the banned constructs do: seeded Rng instead of
// random_device, simulator virtual time instead of wall clock, ordered maps
// for anything that feeds output.
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed) {}
  std::uint64_t next() { return state = state * 6364136223846793005ull + 1; }
};

// An unordered container is fine as long as nobody iterates it: point
// lookups are order-free. "steady_clock" in this comment (and in the
// string below) must not trip the linter either.
std::uint64_t lookup(const std::unordered_map<int, std::uint64_t>& m, int k) {
  const auto it = m.find(k);
  return it == m.end() ? 0 : it->second;
}

std::string report(const std::map<std::string, double>& metrics) {
  std::string out = "std::chrono::steady_clock is only text here";
  for (const auto& [name, value] : metrics) {
    out += name + "=" + std::to_string(value) + "\n";
  }
  return out;
}

}  // namespace fixture
