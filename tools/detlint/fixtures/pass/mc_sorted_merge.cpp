// Fixture: the sanctioned counterpart of fail/mc_unordered_merge.cpp.
// The mc driver's idiom — ordered containers for anything that feeds the
// report, and exploration bounded by run counts (pure function of the
// spec), never by wall-clock deadlines. This file must lint clean even
// when scanned as campaign-critical.
#include <cstdint>
#include <map>
#include <string>

struct CellStats {
  std::uint64_t interleavings = 0;
};

std::string merge_cells(const std::map<std::string, CellStats>& cells) {
  std::string out;
  for (const auto& [slug, stats] : cells) {  // deterministic: key order
    out += slug + "=" + std::to_string(stats.interleavings) + "\n";
  }
  return out;
}

bool budget_left(std::uint64_t runs, std::uint64_t max_runs) {
  return max_runs == 0 || runs < max_runs;
}
