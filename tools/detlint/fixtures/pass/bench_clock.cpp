// Fixture: the sanctioned bench-clock idiom. Wall-clock throughput benches
// alias the banned clock once, behind an annotation whose reason names the
// artifact the numbers feed — the alias is then the only clock spelled out
// in the file, and the repo-scan pin (scripts/lint.sh --expect-allowed)
// counts exactly these sites.
#include <chrono>

namespace fixture {

// p4u-detlint: allow(wall-clock) microbenchmark measurand; numbers go to a trajectory artifact, not a campaign report
using BenchClock = std::chrono::steady_clock;

double measure_ms() {
  const auto t0 = BenchClock::now();
  double acc = 0.0;
  for (int i = 0; i < 1000; ++i) acc += static_cast<double>(i);
  const std::chrono::duration<double, std::milli> dt = BenchClock::now() - t0;
  return acc > 0.0 ? dt.count() : 0.0;
}

}  // namespace fixture
