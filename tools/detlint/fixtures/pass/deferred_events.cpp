// Fixture: the sanctioned ways to hand a body to the event queue — explicit
// captures (by value, or by reference to queue-outliving objects), plus one
// annotated allow() site. Must lint clean with every annotation used.
namespace fixture {

struct Sim {
  template <typename F>
  void schedule_at(long at, F&& f);
  template <typename F>
  void schedule_in(long delay, F&& f);
};

struct Bed {
  Sim sim;
  void tick();
};

void explicit_captures(Bed& bed, int flow) {
  // By-value and named-by-reference captures are fine: each one is a
  // deliberate lifetime decision.
  bed.sim.schedule_at(10, [&bed, flow]() { bed.tick(); (void)flow; });
  bed.sim.schedule_in(5, [flow]() { (void)flow; });
}

void annotated_site(Bed& bed) {
  // p4u-detlint: allow(inlinefn-capture) fixture: body runs before this scope returns (drained synchronously below)
  bed.sim.schedule_at(0, [&]() { bed.tick(); });
}

void reference_capture_of_named_object(Bed& bed) {
  // A named &-capture is not a blanket capture: [&bed] is explicit.
  bed.sim.schedule_at(15, [&bed]() { bed.tick(); });
}

}  // namespace fixture
