// Fixture: malformed and stale suppressions — all three must be flagged.
#include <cstdlib>

namespace fixture {

int missing_reason() {
  // p4u-detlint: allow(raw-rand)
  return rand();
}

int unknown_rule() {
  // p4u-detlint: allow(wibble) no such rule id
  return 1;
}

// p4u-detlint: allow(wall-clock) nothing on the next line uses a clock
int stale() { return 2; }

}  // namespace fixture
