// Fixture: unannotated wall-clock reads — every line here must be flagged.
#include <chrono>
#include <ctime>

namespace fixture {

long t1() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
long t2() { return std::chrono::system_clock::now().time_since_epoch().count(); }
long t3() {
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}
long t4() { return static_cast<long>(time(nullptr)); }

}  // namespace fixture
