// Fixture: the bug classes that would silently break the model-checking
// driver's determinism contract. bench/mc merges per-cell explorer stats
// into BENCH_mc.json — iterating an unordered map there makes the report
// depend on hash order, and a wall-clock exploration deadline makes the
// set of explored interleavings depend on machine load. Both must flag
// when the mc driver is scanned as campaign-critical.
#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>

struct CellStats {
  std::uint64_t interleavings = 0;
};

std::string merge_cells(
    const std::unordered_map<std::string, CellStats>& cells) {
  std::string out;
  for (const auto& [slug, stats] : cells) {  // hash-order report
    out += slug + "=" + std::to_string(stats.interleavings) + "\n";
  }
  return out;
}

bool budget_left(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::steady_clock::now() < deadline;  // load-dependent
}
