// Fixture: environment-dependent logic — must be flagged.
#include <cstdlib>

namespace fixture {

bool verbose() { return std::getenv("P4U_VERBOSE") != nullptr; }
void poison() { setenv("P4U_MODE", "fast", 1); }

}  // namespace fixture
