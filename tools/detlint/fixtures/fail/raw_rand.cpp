// Fixture: unseeded randomness — every construct here must be flagged.
#include <cstdlib>
#include <random>

namespace fixture {

int r1() { return rand(); }
void r2() { srand(42); }
unsigned r3() {
  std::random_device rd;
  return rd();
}

}  // namespace fixture
