// Fixture: hash-order iteration in campaign-critical code — both the
// range-for forms and the explicit iterator walk must be flagged.
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

std::unordered_map<int, double> totals;
std::unordered_set<std::string> names;

double emit_csv() {
  double acc = 0.0;
  for (const auto& [k, v] : totals) acc += v;  // float sum in hash order
  return acc;
}

std::string emit_names() {
  std::string out;
  for (const std::string& n : names) out += n + ",";
  return out;
}

std::size_t walk() {
  std::size_t c = 0;
  for (auto it = totals.begin(); it != totals.end(); ++it) ++c;
  return c;
}

}  // namespace fixture
