// Fixture: default-by-reference lambda captures handed to the event queue.
// All three forms — same-line [&], [&, extra] with explicit extras, and a
// multi-line call head — must be flagged; the deferred body outlives the
// scope whose locals the blanket capture references.
namespace fixture {

struct Sim {
  template <typename F>
  void schedule_at(long at, F&& f);
  template <typename F>
  void schedule_in(long delay, F&& f);
};

void deferred_blanket_capture(Sim& sim) {
  int local = 7;
  sim.schedule_at(10, [&]() { local += 1; });
}

void deferred_mixed_capture(Sim& sim) {
  int seq = 0;
  sim.schedule_in(5, [&, seq]() { (void)seq; });
}

void deferred_multiline_call(Sim& sim) {
  double acc = 0.0;
  sim.schedule_at(
      20,
      [&] { acc += 1.0; });
}

}  // namespace fixture
