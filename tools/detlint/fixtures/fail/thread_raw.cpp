// Fixture: raw threading primitives outside the sanctioned parallel
// engine — every declaration line here must be flagged. The lock_guard
// lines must NOT add findings of their own: std::mutex in template-argument
// position points at a declaration that is already the containment point.
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace fixture {

struct SideChannel {
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<int> pending{0};
};

inline void poke(SideChannel& ch) {
  std::thread worker([&ch] {
    const std::lock_guard<std::mutex> lock(ch.mu);
    ch.pending.fetch_add(1);
  });
  worker.join();
  std::this_thread::yield();
}

}  // namespace fixture
