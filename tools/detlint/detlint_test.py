#!/usr/bin/env python3
"""Unit tests for detlint itself (run as a ctest case).

Two layers:
  * function-level tests of the tricky pieces — comment/string stripping,
    suppression parsing, range-for extraction, unordered-declaration
    harvesting;
  * end-to-end runs over the committed fixtures (pass/ must exit 0,
    fail/ must exit 1 with the expected rule ids).
"""

import subprocess
import sys
import unittest
from pathlib import Path

HERE = Path(__file__).resolve().parent
sys.path.insert(0, str(HERE))

import detlint  # noqa: E402


def run_detlint(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(HERE / "detlint.py"), *args],
        capture_output=True,
        text=True,
        check=False,
    )


class StripTest(unittest.TestCase):
    def test_line_comment_blanked(self):
        lines = detlint.strip_comments_and_strings("int x; // rand()\n")
        self.assertEqual(lines[0], "int x; ")

    def test_block_comment_preserves_line_numbers(self):
        src = "a\n/* rand()\n   rand() */\nb\n"
        lines = detlint.strip_comments_and_strings(src)
        self.assertEqual(len(lines), 5)
        self.assertEqual(lines[0], "a")
        self.assertNotIn("rand", "".join(lines))
        self.assertEqual(lines[3], "b")

    def test_string_and_char_literals_blanked(self):
        src = 'auto s = "rand()"; char c = \'"\'; int y = rand();\n'
        lines = detlint.strip_comments_and_strings(src)
        self.assertNotIn('"rand()"', lines[0])
        self.assertIn("rand()", lines[0])  # the real call survives

    def test_raw_string_blanked(self):
        src = 'auto s = R"(getenv("X"))"; int z = 0;\n'
        lines = detlint.strip_comments_and_strings(src)
        self.assertNotIn("getenv", lines[0])
        self.assertIn("int z = 0;", lines[0])

    def test_escaped_quote_in_string(self):
        src = 'auto s = "a\\"b rand() c"; int q = 1;\n'
        lines = detlint.strip_comments_and_strings(src)
        self.assertNotIn("rand", lines[0])
        self.assertIn("int q = 1;", lines[0])


class SuppressionTest(unittest.TestCase):
    def test_parse_rules_and_reason(self):
        sups = detlint.parse_suppressions(
            ["int x;", "// p4u-detlint: allow(wall-clock, raw-rand) why not"]
        )
        self.assertIn(2, sups)
        self.assertEqual(sups[2].rules, ("wall-clock", "raw-rand"))
        self.assertEqual(sups[2].reason, "why not")

    def test_missing_reason_is_empty(self):
        sups = detlint.parse_suppressions(["// p4u-detlint: allow(raw-rand)"])
        self.assertEqual(sups[1].reason, "")

    def test_non_annotation_ignored(self):
        sups = detlint.parse_suppressions(
            ["// detlint allow(raw-rand) not our marker"]
        )
        self.assertEqual(sups, {})


class RangeForTest(unittest.TestCase):
    def test_simple(self):
        got = detlint.range_for_exprs("for (auto x : items) {\n}\n")
        self.assertEqual(got, [(1, "items")])

    def test_single_statement_body(self):
        got = detlint.range_for_exprs("for (const auto& [k, v] : m_) f(k);\n")
        self.assertEqual(got, [(1, "m_")])

    def test_classic_for_skipped(self):
        got = detlint.range_for_exprs("for (int i = 0; i < n; ++i) {}\n")
        self.assertEqual(got, [])

    def test_nested_call_expr(self):
        got = detlint.range_for_exprs("for (auto& e : obj.entries()) {}\n")
        self.assertEqual(got, [(1, "obj.entries()")])

    def test_structured_binding_with_scope_colons(self):
        got = detlint.range_for_exprs(
            "for (std::size_t i : p4u::net::ids(g)) {}\n"
        )
        self.assertEqual(got, [(1, "p4u::net::ids(g)")])

    def test_multiline_head(self):
        got = detlint.range_for_exprs(
            "for (const auto& very_long_name :\n     container_) {\n}\n"
        )
        self.assertEqual(got, [(1, "container_")])


class UnorderedNamesTest(unittest.TestCase):
    def test_member_declaration(self):
        names = detlint.unordered_names(
            "std::unordered_map<int, std::vector<int>> records_;"
        )
        self.assertEqual(names, {"records_"})

    def test_nested_template_balanced(self):
        names = detlint.unordered_names(
            "std::unordered_map<std::pair<int,int>, std::map<int,int>> deep_;"
        )
        self.assertEqual(names, {"deep_"})

    def test_alias_then_declaration(self):
        names = detlint.unordered_names(
            "using Table = std::unordered_map<int, int>;\nTable cells_;"
        )
        self.assertIn("cells_", names)

    def test_ordered_map_not_matched(self):
        names = detlint.unordered_names("std::map<int, int> fine_;")
        self.assertEqual(names, set())


class InlineFnCaptureTest(unittest.TestCase):
    def _findings(self, src: str):
        lines = detlint.strip_comments_and_strings(src)
        return detlint.inlinefn_findings("x.cpp", lines)

    def test_blanket_capture_flagged(self):
        got = self._findings("sim.schedule_at(10, [&]() { f(); });\n")
        self.assertEqual(len(got), 1)
        self.assertEqual(got[0].rule, "inlinefn-capture")
        self.assertEqual(got[0].line, 1)

    def test_default_ref_with_extras_flagged(self):
        got = self._findings("sim.schedule_in(5, [&, seq]() { g(seq); });\n")
        self.assertEqual(len(got), 1)

    def test_multiline_call_span_covered(self):
        got = self._findings(
            "sim.schedule_at(\n    t,\n    [&] { h(); });\n"
        )
        self.assertEqual(len(got), 1)
        self.assertEqual(got[0].line, 3)

    def test_named_reference_capture_clean(self):
        got = self._findings(
            "sim.schedule_at(10, [&bed, flow]() { bed.run(flow); });\n"
        )
        self.assertEqual(got, [])

    def test_by_value_capture_clean(self):
        got = self._findings("sim.schedule_in(5, [flow]() { g(flow); });\n")
        self.assertEqual(got, [])

    def test_nested_call_inside_event_body_clean(self):
        # A [&] handed to a *nested* call inside the deferred body (here a
        # lazy trace thunk) runs synchronously within the event and never
        # outlives its scope; only the lambda handed to schedule_* itself
        # is the deferred one.
        got = self._findings(
            "sim.schedule_in(lat, [this, pkt]() {\n"
            "  trace.add_lazy([&] { return describe(pkt); });\n"
            "});\n"
        )
        self.assertEqual(got, [])

    def test_blanket_capture_outside_schedule_call_clean(self):
        # The rule targets deferred event bodies only; an immediate
        # algorithm callback may capture whatever it likes.
        got = self._findings("std::sort(v.begin(), v.end(), [&](int a, int b)"
                             " { return key[a] < key[b]; });\n")
        self.assertEqual(got, [])


class ThreadContainmentTest(unittest.TestCase):
    def _findings(self, src: str):
        lines = detlint.strip_comments_and_strings(src)
        return detlint.thread_findings("x.cpp", lines)

    def test_primitive_declarations_flagged(self):
        got = self._findings(
            "std::mutex mu_;\nstd::atomic<int> n{0};\nstd::thread t;\n"
        )
        self.assertEqual([f.rule for f in got], ["thread-containment"] * 3)
        self.assertEqual([f.line for f in got], [1, 2, 3])

    def test_condition_variable_and_this_thread_flagged(self):
        got = self._findings(
            "std::condition_variable_any cv;\nstd::this_thread::yield();\n"
        )
        self.assertEqual(len(got), 2)

    def test_template_argument_position_clean(self):
        got = self._findings(
            "const std::lock_guard<std::mutex> lock(mu_);\n"
            "std::scoped_lock<std::mutex,\n"
            "                 std::mutex> both(a, b);\n"
        )
        self.assertEqual(got, [])

    def test_unrelated_std_names_clean(self):
        got = self._findings(
            "std::vector<int> v;\nstd::map<int, int> m;\n"
            "int futures_settled = 0;\n"
        )
        self.assertEqual(got, [])

    def test_thread_allow_prefix_exempts_file(self):
        r = run_detlint(
            "--repo", str(HERE / "fixtures"), "--paths", "fail",
            "--critical", "fail", "--thread-allow", "fail/thread_raw",
        )
        self.assertNotIn("thread-containment", r.stdout)


class FixtureTest(unittest.TestCase):
    FIXTURES = HERE / "fixtures"

    def test_pass_fixtures_are_clean(self):
        r = run_detlint(
            "--repo", str(self.FIXTURES), "--paths", "pass",
            "--critical", "pass",
        )
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_fail_fixtures_are_flagged(self):
        r = run_detlint(
            "--repo", str(self.FIXTURES), "--paths", "fail",
            "--critical", "fail",
        )
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        expected = {
            "fail/wall_clock.cpp": "wall-clock",
            "fail/raw_rand.cpp": "raw-rand",
            "fail/env_read.cpp": "env-read",
            "fail/unordered_iter.cpp": "unordered-iter",
            "fail/bad_suppressions.cpp": "bad-suppression",
            "fail/mc_unordered_merge.cpp": "unordered-iter",
            "fail/inlinefn_capture.cpp": "inlinefn-capture",
            "fail/thread_raw.cpp": "thread-containment",
        }
        for path, rule in expected.items():
            self.assertIn(f"{path}:", r.stdout)
            self.assertRegex(r.stdout, rf"{path}:\d+: {rule}:")
        # The mc-shaped fixture carries both bug classes the model-checking
        # driver must stay free of.
        self.assertRegex(
            r.stdout, r"fail/mc_unordered_merge\.cpp:\d+: wall-clock:"
        )
        self.assertRegex(
            r.stdout, r"bad_suppressions\.cpp:\d+: unused-suppression:"
        )

    def test_fail_fixture_finding_counts(self):
        r = run_detlint(
            "--repo", str(self.FIXTURES), "--paths", "fail",
            "--critical", "fail",
        )
        # wall_clock: 4, raw_rand: 3, env_read: 2, unordered_iter: 3 (two
        # range-fors + one .begin() walk), bad_suppressions: 3,
        # mc_unordered_merge: 3 (one hash-order range-for + two
        # steady_clock reads), inlinefn_capture: 3 (same-line [&],
        # [&, extra], multi-line call head), thread_raw: 5 (mutex, condvar,
        # atomic, thread, this_thread; the lock_guard<std::mutex> line adds
        # nothing — template-argument position).
        banned = [l for l in r.stdout.splitlines() if "[banned]" in l]
        self.assertEqual(len(banned), 26, r.stdout)

    def test_expect_allowed_mismatch_fails(self):
        r = run_detlint(
            "--repo", str(self.FIXTURES), "--paths", "pass",
            "--critical", "pass",
            "--expect-allowed", "wall-clock:pass=99",
        )
        self.assertEqual(r.returncode, 1)
        self.assertIn("expected 99 allowed", r.stderr)

    def test_expect_allowed_match_passes(self):
        # allowed_site.cpp carries two wall-clock sites, bench_clock.cpp one.
        r = run_detlint(
            "--repo", str(self.FIXTURES), "--paths", "pass",
            "--critical", "pass",
            "--expect-allowed", "wall-clock:pass=3",
        )
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_bench_clock_alias_fixture_registers_as_allowed(self):
        # The sanctioned bench idiom: one annotated `using BenchClock = ...`
        # alias. The annotation must register (not be flagged unused), the
        # file must lint clean, and --list-allowed must surface the site so
        # repo-scan pins can count it.
        r = run_detlint(
            "--repo", str(self.FIXTURES), "--paths", "pass",
            "--critical", "pass", "--list-allowed",
        )
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertRegex(
            r.stdout, r"pass/bench_clock\.cpp:\d+: wall-clock:.*\[allowed"
        )


class RepoScanTest(unittest.TestCase):
    """The dirs added by the interleaving-explorer work, scanned for real.

    src/sim holds the strategy/schedule/explorer core plus the sharded
    parallel engine, src/harness holds the campaign runner, and bench/
    holds the mc and static-verification drivers; all feed replayable
    artifacts and gating reports, so they must stay free of
    unordered-container iteration and deferred [&]-captures (bench/mc.cpp
    and bench/verify.cpp are promoted to campaign-critical), of wall-clock
    reads beyond the five sanctioned BenchClock sites in bench drivers,
    and of raw threading outside the allowlisted engine (the one annotated
    exception is the SystemFactory registry mutex).
    """

    REPO = HERE.parent.parent

    def test_sim_and_mc_driver_stay_deterministic(self):
        r = run_detlint(
            "--repo", str(self.REPO),
            "--paths", "src/sim", "src/harness", "bench",
            "--critical", "src", "bench/mc.cpp", "bench/verify.cpp",
            "--expect-allowed", "wall-clock:bench=5",
            "--expect-allowed", "thread-containment:src=1",
        )
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


if __name__ == "__main__":
    unittest.main()
