#!/usr/bin/env python3
"""detlint: the determinism linter for the P4Update simulator.

The repo's headline guarantee is that campaign results are a pure function
of (spec, seed) — byte-identical JSONL/CSV reports for any --jobs N. The
bug classes that silently break it are statically detectable, and this
checker bans them:

  wall-clock      std::chrono::{system,steady,high_resolution}_clock,
                  clock_gettime, gettimeofday, ::time(...) — real time must
                  never feed simulation state or reports.
  raw-rand        rand(), srand(), std::random_device, drand48 — all
                  randomness must come from the seeded sim::Rng.
  env-read        getenv/secure_getenv/setenv/putenv — behavior must not
                  depend on the environment of the invoking shell.
  unordered-iter  iteration over std::unordered_map/std::unordered_set in
                  campaign-critical code (default: src/). Hash-order
                  iteration feeding a report, a merge, or a float
                  accumulation makes output depend on insertion history
                  and platform hash seeds; iterate a sorted view instead,
                  or annotate why the order cannot escape.
  inlinefn-capture  default-by-reference lambda captures ([&] / [&, ...])
                  passed to schedule_at/schedule_in in campaign-critical
                  code. A deferred event body runs long after the enclosing
                  scope returned; a blanket &-capture silently keeps
                  references to locals that may be dead by fire time.
                  Capture what the event needs explicitly (by value, or by
                  reference to objects that provably outlive the queue).
  thread-containment  raw threading primitives (std::thread/jthread, the
                  mutex family, condition variables, atomics, futures,
                  latches/barriers/semaphores) in campaign-critical code
                  outside the sanctioned parallel engine (--thread-allow,
                  default: src/sim/parallel*, src/harness/parallel_runner*).
                  Ad-hoc threading is how nondeterminism leaks into merged
                  reports; cross-shard work must go through the sharded
                  engine's mailboxes so ordering stays keyed and replayable.
                  Template-argument mentions (e.g. lock_guard<std::mutex>)
                  are not flagged — the primitive's declaration site is the
                  containment point.

Suppressions: a finding is allowed by an inline annotation on the same
line or the line directly above:

    // p4u-detlint: allow(<rule>[,<rule>...]) <reason>

The reason is mandatory. An annotation that suppresses nothing is itself
an error (unused-suppression), so stale allows cannot accumulate.

Exit codes: 0 clean, 1 findings (or failed --expect-allowed), 2 usage.

Typical invocations:
    tools/detlint/detlint.py --repo .
    tools/detlint/detlint.py --repo . --list-allowed
    tools/detlint/detlint.py --repo . --expect-allowed wall-clock:src=1
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

DEFAULT_PATHS = ("src", "bench", "examples", "tests")
# unordered-iter only applies to campaign-critical code: the library that
# produces, merges, and reports campaign results.
DEFAULT_CRITICAL = ("src",)
# thread-containment exempts the sanctioned parallel machinery: the sharded
# engine (workers, mailboxes, window barrier) and the campaign job runner.
DEFAULT_THREAD_ALLOW = ("src/sim/parallel", "src/harness/parallel_runner")
SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".hh", ".h"}

RULES = ("wall-clock", "raw-rand", "env-read", "unordered-iter",
         "inlinefn-capture", "thread-containment")

# Patterns are matched against comment- and string-stripped lines.
LINE_RULES = {
    "wall-clock": re.compile(
        r"std\s*::\s*chrono\s*::\s*(?:system|steady|high_resolution)_clock"
        r"|\bclock_gettime\s*\("
        r"|\bgettimeofday\s*\("
        r"|(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    ),
    "raw-rand": re.compile(
        r"(?<![\w.:])s?rand\s*\("
        r"|\brandom_device\b"
        r"|\b[dlm]rand48\s*\("
    ),
    "env-read": re.compile(
        r"\b(?:secure_)?getenv\s*\(|\bsetenv\s*\(|\bputenv\s*\("
    ),
}

SUPPRESS_RE = re.compile(
    r"//\s*p4u-detlint:\s*allow\(\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)\s*\)\s*(.*)"
)

UNORDERED_DECL_RE = re.compile(r"std\s*::\s*unordered_(?:map|set)\s*<")
FOR_RE = re.compile(r"\bfor\s*\(")
BEGIN_CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?r?begin\s*\(")
SCHEDULE_CALL_RE = re.compile(r"\bschedule_(?:at|in)\s*\(")
# A lambda introducer whose first capture is a bare '&': [&] or [&, ...].
DEFAULT_REF_CAPTURE_RE = re.compile(r"\[\s*&\s*[,\]]")
# Raw threading vocabulary. atomic\w* covers atomic<T>, atomic_flag,
# atomic_bool, atomic_thread_fence, ...; the mutex alternative covers the
# whole <mutex>/<shared_mutex> family.
THREAD_PRIMITIVE_RE = re.compile(
    r"(?<!\w)std\s*::\s*(?:"
    r"j?thread\b|this_thread\b"
    r"|(?:recursive_|timed_|recursive_timed_|shared_|shared_timed_)?mutex\b"
    r"|condition_variable(?:_any)?\b"
    r"|atomic\w*"
    r"|call_once\b|once_flag\b"
    r"|async\b|future\b|shared_future\b|promise\b|packaged_task\b"
    r"|latch\b|barrier\b|counting_semaphore\b|binary_semaphore\b"
    r")"
)


@dataclass
class Finding:
    path: str  # repo-relative, forward slashes
    line: int  # 1-based
    rule: str
    message: str
    allowed: bool = False
    reason: str = ""

    def render(self) -> str:
        tag = f"allowed ({self.reason})" if self.allowed else "banned"
        return f"{self.path}:{self.line}: {self.rule}: {self.message} [{tag}]"


@dataclass
class Suppression:
    line: int  # the line the annotation sits on
    rules: tuple[str, ...]
    reason: str
    used: bool = False


def strip_comments_and_strings(text: str) -> list[str]:
    """Blanks comments, string literals, and char literals, preserving the
    line structure so findings keep real line numbers."""
    out: list[str] = []
    i, n = 0, len(text)
    cur: list[str] = []
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            out.append("".join(cur))
            cur = []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
            elif c == '"':
                # Raw strings R"delim( ... )delim" may span lines.
                if cur and cur[-1:] == ["R"]:
                    m = re.match(r'"([^\s()\\]*)\(', text[i:])
                    if m:
                        end = text.find(")" + m.group(1) + '"', i)
                        if end == -1:
                            end = n
                        skipped = text[i : end + len(m.group(1)) + 2]
                        for ch in skipped:
                            if ch == "\n":
                                out.append("".join(cur))
                                cur = []
                        i += len(skipped)
                        continue
                state = "string"
                i += 1
            elif c == "'":
                state = "char"
                i += 1
            else:
                cur.append(c)
                i += 1
        elif state == "line_comment":
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                i += 1
        elif state in ("string", "char"):
            if c == "\\":
                i += 2
            elif (state == "string" and c == '"') or (
                state == "char" and c == "'"
            ):
                state = "code"
                i += 1
            else:
                i += 1
    out.append("".join(cur))
    return out


def parse_suppressions(raw_lines: list[str]) -> dict[int, Suppression]:
    """Maps annotation line number -> Suppression. Validation errors are
    reported as findings by the caller (unknown rules, missing reason)."""
    found: dict[int, Suppression] = {}
    for idx, line in enumerate(raw_lines, start=1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        rules = tuple(r.strip() for r in m.group(1).split(","))
        found[idx] = Suppression(idx, rules, m.group(2).strip())
    return found


def balanced_angle_span(text: str, open_idx: int) -> int:
    """Given index of '<', returns index just past the matching '>'."""
    depth = 0
    i = open_idx
    while i < len(text):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(text)


def balanced_paren_span(text: str, open_idx: int) -> int:
    """Given index of '(', returns index just past the matching ')'."""
    depth = 0
    i = open_idx
    while i < len(text):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(text)


def inlinefn_findings(rel: str, clean_lines: list[str]) -> list[Finding]:
    """Default-by-reference lambda captures passed directly to
    schedule_at/schedule_in. The call's argument span is parsed with
    balanced parentheses, so multi-line lambdas are covered. Only captures
    at the call's own argument depth are flagged: a [&] inside a nested
    call (or inside the event body itself) runs synchronously within its
    enclosing scope and is out of scope for this rule."""
    out = []
    clean_text = "\n".join(clean_lines)
    for m in SCHEDULE_CALL_RE.finditer(clean_text):
        open_idx = m.end() - 1
        end = balanced_paren_span(clean_text, open_idx)
        span = clean_text[open_idx:end]
        for cm in DEFAULT_REF_CAPTURE_RE.finditer(span):
            depth = 0
            for ch in span[: cm.start()]:
                if ch in "([{":
                    depth += 1
                elif ch in ")]}":
                    depth -= 1
            if depth != 1:
                continue
            line = clean_text.count("\n", 0, open_idx + cm.start()) + 1
            out.append(
                Finding(
                    rel,
                    line,
                    "inlinefn-capture",
                    f"default-by-reference capture in a "
                    f"'{m.group(0).strip().rstrip('(').strip()}' event body",
                )
            )
            break
    return out


def thread_findings(rel: str, clean_lines: list[str]) -> list[Finding]:
    """Raw threading primitives spelled out in this file. A mention in
    template-argument position (lock_guard<std::mutex>, scoped_lock<...,
    std::mutex>) is skipped: locking a mutex is not the violation, declaring
    one outside the sanctioned engine is, and the declaration line is where
    the finding lands."""
    out = []
    prev_tail = ""
    for idx, line in enumerate(clean_lines, start=1):
        for m in THREAD_PRIMITIVE_RE.finditer(line):
            # A wrapped template-argument list puts the '<' or ',' at the
            # end of the previous line.
            before = line[: m.start()].rstrip() or prev_tail
            if before.endswith("<") or before.endswith(","):
                continue
            out.append(
                Finding(
                    rel,
                    idx,
                    "thread-containment",
                    f"raw threading primitive '{m.group(0).strip()}'",
                )
            )
        prev_tail = line.rstrip()
    return out


def unordered_names(clean_text: str) -> set[str]:
    """Identifiers declared (directly or via one level of alias) with an
    unordered container type in this text."""
    names: set[str] = set()
    aliases: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(clean_text):
        end = balanced_angle_span(clean_text, m.end() - 1)
        before = clean_text[: m.start()]
        after = clean_text[end:]
        alias_m = re.search(r"\busing\s+([A-Za-z_]\w*)\s*=\s*$", before)
        if alias_m:
            aliases.add(alias_m.group(1))
            continue
        decl_m = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(,)]", after)
        if decl_m:
            names.add(decl_m.group(1))
    for alias in aliases:
        for m in re.finditer(
            rf"\b{alias}\b\s*&?\s*([A-Za-z_]\w*)\s*[;={{]", clean_text
        ):
            names.add(m.group(1))
    return names


def range_for_exprs(clean_text: str) -> list[tuple[int, str]]:
    """(line, iterated-expression) for every range-based for. The for-head
    is parsed with balanced parentheses, so nested calls and multi-line
    heads are handled; a head containing a top-level ';' is a classic for
    loop and is skipped."""
    out = []
    for m in FOR_RE.finditer(clean_text):
        open_idx = m.end() - 1
        depth = 0
        colon = -1
        classic = False
        i = open_idx
        while i < len(clean_text):
            c = clean_text[i]
            if c in "([{":
                depth += 1
            elif c in ")]}":
                depth -= 1
                if depth == 0:
                    break
            elif depth == 1 and c == ";":
                classic = True
                break
            elif depth == 1 and c == ":" and colon == -1:
                # skip '::' scope tokens
                if clean_text[i - 1] == ":" or (
                    i + 1 < len(clean_text) and clean_text[i + 1] == ":"
                ):
                    pass
                else:
                    colon = i
            i += 1
        if classic or colon == -1 or i >= len(clean_text):
            continue
        expr = clean_text[colon + 1 : i].strip()
        line = clean_text.count("\n", 0, colon) + 1
        out.append((line, expr))
    return out


def iteration_findings(
    rel: str, clean_lines: list[str], names: set[str]
) -> list[Finding]:
    if not names:
        return []
    out = []
    clean_text = "\n".join(clean_lines)
    for line, expr in range_for_exprs(clean_text):
        tail = re.search(r"([A-Za-z_]\w*)\s*(?:\(\s*\))?\s*$", expr)
        if tail and tail.group(1) in names:
            out.append(
                Finding(
                    rel,
                    line,
                    "unordered-iter",
                    f"range-for over unordered container '{tail.group(1)}'"
                    " (hash order)",
                )
            )
    for idx, line_text in enumerate(clean_lines, start=1):
        for m in BEGIN_CALL_RE.finditer(line_text):
            if m.group(1) in names:
                out.append(
                    Finding(
                        rel,
                        idx,
                        "unordered-iter",
                        f"iterator walk over unordered container"
                        f" '{m.group(1)}' (hash order)",
                    )
                )
    return out


@dataclass
class FileReport:
    findings: list[Finding] = field(default_factory=list)


def check_file(
    repo: Path,
    path: Path,
    critical: tuple[str, ...],
    thread_allow: tuple[str, ...] = DEFAULT_THREAD_ALLOW,
) -> FileReport:
    rel = path.relative_to(repo).as_posix()
    raw = path.read_text(encoding="utf-8", errors="replace")
    raw_lines = raw.split("\n")
    clean_lines = strip_comments_and_strings(raw)
    suppressions = parse_suppressions(raw_lines)
    rep = FileReport()

    for sup in suppressions.values():
        unknown = [r for r in sup.rules if r not in RULES]
        if unknown:
            rep.findings.append(
                Finding(
                    rel,
                    sup.line,
                    "bad-suppression",
                    f"unknown rule(s) {', '.join(unknown)} in allow()",
                )
            )
        if not sup.reason:
            rep.findings.append(
                Finding(
                    rel,
                    sup.line,
                    "bad-suppression",
                    "allow() needs a reason after the closing paren",
                )
            )

    candidates: list[Finding] = []
    for rule, pattern in LINE_RULES.items():
        for idx, line in enumerate(clean_lines, start=1):
            for m in pattern.finditer(line):
                candidates.append(
                    Finding(rel, idx, rule, f"'{m.group(0).strip()}'")
                )

    if any(rel.startswith(prefix.rstrip("/") + "/") or rel == prefix
           for prefix in critical):
        names = unordered_names("\n".join(clean_lines))
        pair = (
            path.with_suffix(".hpp")
            if path.suffix == ".cpp"
            else path.with_suffix(".cpp")
        )
        if path.suffix == ".cpp" and pair.exists():
            names |= unordered_names(
                "\n".join(strip_comments_and_strings(pair.read_text()))
            )
        candidates.extend(iteration_findings(rel, clean_lines, names))
        candidates.extend(inlinefn_findings(rel, clean_lines))
        if not any(rel.startswith(prefix) for prefix in thread_allow):
            candidates.extend(thread_findings(rel, clean_lines))

    for f in candidates:
        for at in (f.line, f.line - 1):
            sup = suppressions.get(at)
            if sup and f.rule in sup.rules:
                f.allowed = True
                f.reason = sup.reason
                sup.used = True
                break
        rep.findings.append(f)

    for sup in suppressions.values():
        if not sup.used and all(r in RULES for r in sup.rules):
            rep.findings.append(
                Finding(
                    rel,
                    sup.line,
                    "unused-suppression",
                    f"allow({','.join(sup.rules)}) suppresses nothing",
                )
            )
    return rep


def parse_expect(spec: str) -> tuple[str, str, int]:
    m = re.fullmatch(r"([a-z-]+):([\w./-]+)=(\d+)", spec)
    if not m:
        raise argparse.ArgumentTypeError(
            f"bad --expect-allowed '{spec}' (want rule:path-prefix=count)"
        )
    return m.group(1), m.group(2), int(m.group(3))


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="detlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ap.add_argument("--repo", required=True, type=Path,
                    help="repository root; scanned paths are relative to it")
    ap.add_argument("--paths", nargs="+", default=list(DEFAULT_PATHS),
                    help=f"directories to scan (default: {DEFAULT_PATHS})")
    ap.add_argument("--critical", nargs="+", default=list(DEFAULT_CRITICAL),
                    help="path prefixes where unordered-iter applies "
                         f"(default: {DEFAULT_CRITICAL})")
    ap.add_argument("--thread-allow", nargs="+",
                    default=list(DEFAULT_THREAD_ALLOW),
                    help="path prefixes exempt from thread-containment "
                         f"(default: {DEFAULT_THREAD_ALLOW})")
    ap.add_argument("--list-allowed", action="store_true",
                    help="print allowed (annotated) sites as well")
    ap.add_argument("--expect-allowed", action="append", default=[],
                    type=parse_expect, metavar="RULE:PREFIX=N",
                    help="fail unless exactly N allowed RULE sites exist "
                         "under PREFIX (e.g. wall-clock:src=1)")
    args = ap.parse_args(argv)

    repo = args.repo.resolve()
    if not repo.is_dir():
        print(f"detlint: no such directory: {repo}", file=sys.stderr)
        return 2

    files: list[Path] = []
    for p in args.paths:
        base = repo / p
        if not base.exists():
            print(f"detlint: skipping missing path {p}", file=sys.stderr)
            continue
        files.extend(
            f for f in sorted(base.rglob("*"))
            if f.suffix in SOURCE_SUFFIXES and f.is_file()
        )

    all_findings: list[Finding] = []
    for f in files:
        all_findings.extend(
            check_file(
                repo, f, tuple(args.critical), tuple(args.thread_allow)
            ).findings
        )

    banned = [f for f in all_findings if not f.allowed]
    allowed = [f for f in all_findings if f.allowed]

    for f in banned:
        print(f.render())
    if args.list_allowed:
        for f in allowed:
            print(f.render())

    status = 0
    if banned:
        print(f"detlint: {len(banned)} banned construct(s)", file=sys.stderr)
        status = 1

    for rule, prefix, want in args.expect_allowed:
        got = [
            f for f in allowed
            if f.rule == rule
            and (f.path.startswith(prefix.rstrip("/") + "/")
                 or f.path == prefix)
        ]
        if len(got) != want:
            print(
                f"detlint: expected {want} allowed '{rule}' site(s) under "
                f"{prefix}, found {len(got)}:",
                file=sys.stderr,
            )
            for f in got:
                print(f"  {f.render()}", file=sys.stderr)
            status = 1

    if status == 0:
        print(
            f"detlint: OK ({len(files)} files, {len(allowed)} allowed "
            "annotated site(s))"
        )
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
